// Register server: Fig. 3 (BSR) / Fig. 6 (BCSR), plus the responses needed
// by the Section III-C regularity extensions.
//
// The server is value-agnostic: for BSR the stored bytes are full register
// values, for BCSR they are this server's coded elements; the protocol logic
// is identical (the paper's Figs. 3 and 6 differ only in what `v` is). It
// serves the model's whole set of shared variables (Section II-B): every
// request names an object id, and the server keeps one list L per object,
// lazily initialized to {(t0, initial)}.
//
// Sharded dispatch (SystemConfig::server_shards, default 1): the object
// table is split into shards keyed hash(object) % shards, and the server
// asks its transport for one delivery context per shard (delivery_shards /
// shard_of below). Every message that names an object routes to the shard
// that owns it, so each shard's std::map state is touched by exactly one
// mailbox thread and needs no lock. The one cross-shard read -- QUERY-DATA-
// BATCH, whose object list can span owners -- goes through a per-object
// seqlock snapshot (common/seqlock.h) of the newest (tag, value) pair,
// published by the owning shard on every applied put and readable from any
// thread. QUERY-TAG and QUERY-DATA answer from the same snapshot, keeping
// the read fast path off the shard's map entirely.
//
// Supported requests:
//   QUERY-TAG           -> TAG-RESP(max tag in L)              (get-tag-resp)
//   PUT-DATA(t, v)      -> ACK; L grows per StorePolicy        (put-data-resp)
//   QUERY-DATA          -> DATA-RESP(max pair in L)            (get-data-resp)
//   QUERY-HISTORY       -> HISTORY-RESP(entire L)      (history regularity fix)
//   QUERY-TAG-HISTORY   -> TAG-HISTORY-RESP(all tags)     (2R read, phase one)
//   QUERY-DATA-AT(t)    -> DATA-AT-RESP(t, v) now or deferred until t arrives;
//                          DATA-AT-MISSING immediately if unknown
//   READ-DONE           -> drops any deferred queries from that reader
//   QUERY-DATA-BATCH    -> DATA-BATCH-RESP: the newest pair of every object
//                          named in the request (extension: one-shot multi-get)
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/seqlock.h"
#include "net/transport.h"
#include "registers/config.h"
#include "registers/messages.h"

namespace bftreg::registers {

/// Lock-free published copy of an object's newest (tag, value) pair.
/// Written only by the object's owner shard; readable from any thread.
/// Values up to kInlineValueCap bytes live inside the seqlock snapshot;
/// larger ones are swapped through an atomic shared_ptr whose pointee is
/// immutable and self-consistent (tag and value travel together).
class NewestCache {
 public:
  /// Largest value carried inline in the seqlock snapshot. BSR control
  /// messages and BCSR coded elements for small registers fit; bulk values
  /// take the shared_ptr path.
  static constexpr size_t kInlineValueCap = 256;

  /// Owner shard only. Publishes (tag, value) as the newest pair.
  void publish(const Tag& tag, const Bytes& value);

  /// Any thread. Returns false only before the first publish. `value` may
  /// be null when the caller wants just the tag (QUERY-TAG).
  bool read(Tag* tag, Bytes* value) const;

 private:
  struct InlineEntry {
    uint64_t tag_num{0};
    uint32_t writer_index{0};
    uint8_t writer_role{0};
    /// 1: the pair lives in oversize_ (len/data unused).
    uint8_t oversize{0};
    uint16_t len{0};
    uint8_t data[kInlineValueCap]{};
  };

  common::Seqlock<InlineEntry> inline_;
  /// Published *before* the inline sentinel that points at it, so a reader
  /// that sees oversize == 1 always finds the pointer (release/acquire via
  /// the seqlock's sequence).
  std::atomic<std::shared_ptr<const TaggedValue>> oversize_;
};

/// Append-only object -> NewestCache* index, written by one shard thread
/// and probed lock-free by any thread (QUERY-DATA-BATCH reads objects owned
/// by other shards through this). Nodes are immutable once the bucket-head
/// release store publishes them, and objects are never removed, so readers
/// traverse plain `next` pointers with no further synchronization.
class NewestCacheIndex {
 public:
  NewestCacheIndex() = default;
  NewestCacheIndex(const NewestCacheIndex&) = delete;
  NewestCacheIndex& operator=(const NewestCacheIndex&) = delete;

  /// Owner shard only; `object` must not already be present.
  void insert(uint32_t object, const NewestCache* cache);

  /// Any thread; nullptr when the object was never materialized.
  const NewestCache* find(uint32_t object) const;

  /// Any thread; appends every indexed object id to `out` (unsorted).
  /// Traverses the same immutable nodes as find(), so it observes at least
  /// everything published before the call.
  void collect(std::vector<uint32_t>* out) const;

 private:
  static constexpr size_t kBuckets = 64;  // power of two

  struct Node {
    uint32_t object;
    const NewestCache* cache;
    Node* next;
  };

  std::atomic<Node*> heads_[kBuckets]{};
  /// Owns the nodes; touched only by the writing shard thread.
  std::vector<std::unique_ptr<Node>> nodes_;
};

class RegisterServer : public net::IProcess {
 public:
  /// `initial` is what this server stores under the distinguished tag t0
  /// for every object: the register's v0 for BSR, or this server's coded
  /// element Phi_i(v0) for BCSR.
  RegisterServer(ProcessId self, SystemConfig config, net::Transport* transport,
                 Bytes initial);

  void on_message(const net::Envelope& env) override;

  /// One delivery context per object-table shard (SystemConfig::
  /// server_shards). Durable subclasses that serialize through a WAL pin
  /// this back to 1.
  uint32_t delivery_shards() const override;

  /// Peeks the object id out of the (not yet parsed) wire payload and
  /// returns its owner shard. Pure; runs on the sender's thread. Malformed
  /// or too-short payloads go to shard 0, where the full defensive parse
  /// rejects them.
  uint32_t shard_of(const net::Envelope& env) const override;

  // --- introspection (tests, storage accounting for E4) -------------------
  // Read-only and never materializing: asking about an object this server
  // has never stored answers as its lazy initialization {(t0, initial)}
  // without creating state. Callers must be quiescent (no in-flight
  // deliveries) -- these walk shard-private maps without locks.

  /// The list L for `object`; {(t0, initial)} if this server has never
  /// heard of the object.
  const std::map<Tag, Bytes>& store(uint32_t object = 0) const {
    const auto* s = find_store(object);
    return s != nullptr ? *s : initial_store_;
  }
  Tag max_tag(uint32_t object = 0) const { return newest_entry(object).first; }
  const Bytes& max_value(uint32_t object = 0) const {
    return *newest_entry(object).second;
  }

  /// Total payload bytes stored across every object (the paper's
  /// storage-cost metric). Maintained incrementally by apply_put; debug
  /// builds cross-check against a full walk.
  size_t stored_bytes() const;

  size_t objects_known() const;
  std::vector<uint32_t> object_ids() const;
  uint64_t puts_applied() const {
    return puts_applied_.load(std::memory_order_relaxed);
  }

  // --- dynamic membership (reconfiguration extension) ---------------------

  /// The newest membership epoch this server has evidence for. Stamped
  /// into every outgoing reply so clients track view changes by piggyback.
  uint64_t view_epoch() const {
    return view_epoch_.load(std::memory_order_acquire);
  }

  /// Announces a view change: sends VIEW-ANNOUNCE(epoch, members) to every
  /// recipient (typically the full server set plus known clients). An empty
  /// `members` list means "the full static set". Adopts `epoch` locally
  /// first, so this server's own replies immediately carry it.
  void broadcast_view(uint64_t epoch, const std::vector<uint32_t>& members,
                      const std::vector<ProcessId>& recipients);

 protected:
  /// Inserts (tag, value) according to the store policy; returns true if the
  /// entry was added. Also satisfies deferred QUERY-DATA-AT readers.
  /// Virtual so durable servers (storage::PersistentRegisterServer) can
  /// interpose write-ahead logging. Runs on `object`'s owner shard.
  virtual bool apply_put(uint32_t object, const Tag& tag, Bytes value);

  /// Stamps the current view epoch into `msg` (hence non-const) and sends
  /// it. Every reply path funnels through here so epoch piggybacking cannot
  /// be forgotten by a handler.
  void reply(const ProcessId& to, RegisterMessage& msg);

  /// Monotonic fold of an observed epoch into view_epoch_ (CAS-max; any
  /// shard thread). Called for every parsed message so a server that missed
  /// a VIEW-ANNOUNCE still converges from request traffic.
  void observe_epoch(uint64_t epoch);

  /// QUERY-OBJECTS -> OBJECTS-RESP: every object id this server has
  /// materialized (capped; see .cpp). Lock-free via the per-shard indexes,
  /// so any shard thread may serve it for a recovering peer.
  void handle_query_objects(const ProcessId& from, const RegisterMessage& req);

  /// The mutable list L, materializing {(t0, initial)} on first touch.
  /// Owner-shard threads (and single-threaded recovery) only.
  std::map<Tag, Bytes>& object_store(uint32_t object);

  /// Read-only lookup of L: nullptr when this server has never stored a put
  /// for `object`. Unlike object_store(), never inserts -- read-only
  /// handlers answer for unknown objects as if the store were its lazy
  /// initialization {(t0, initial)}, WITHOUT materializing it, so a client
  /// (or Byzantine peer) querying random object ids cannot balloon server
  /// state.
  const std::map<Tag, Bytes>* find_store(uint32_t object) const;

  /// Newest (tag, value) of `object` without creating its store; the value
  /// pointer aliases either the store or `initial_`.
  std::pair<Tag, const Bytes*> newest_entry(uint32_t object) const;

  const ProcessId self_;
  const SystemConfig config_;
  net::Transport* const transport_;

 private:
  /// Everything one mailbox shard owns. No locks: the transport guarantees
  /// all messages for this shard's objects arrive on one thread.
  struct ObjectState {
    /// The list L of Fig. 3 / Fig. 6.
    std::map<Tag, Bytes> log;
    NewestCache newest;
  };
  struct Shard {
    std::map<uint32_t, ObjectState> objects;
    /// Readers waiting for a tag they asked about that we have not yet
    /// seen: (object, tag) -> [(reader, op_id)].
    std::map<std::pair<uint32_t, Tag>,
             std::vector<std::pair<ProcessId, uint64_t>>>
        deferred;
    /// Reverse index: (reader, op_id) -> the deferred keys that hold its
    /// waiters, so READ-DONE cancels with two targeted lookups instead of
    /// sweeping every deferred entry. An op names one object, so all its
    /// keys land in this shard with it.
    std::map<std::pair<ProcessId, uint64_t>,
             std::vector<std::pair<uint32_t, Tag>>>
        deferred_by_op;
    NewestCacheIndex index;
  };

  uint32_t owner_shard(uint32_t object) const;
  Shard& shard_for(uint32_t object);
  const Shard& shard_for(uint32_t object) const;
  /// Creates (if needed) and returns `object`'s state, publishing the
  /// {t0, initial} snapshot and index entry on first touch.
  ObjectState& materialize(uint32_t object);
  /// Cross-shard newest read through the seqlock cache; false when the
  /// object was never materialized (caller answers {t0, initial_}).
  bool read_newest(uint32_t object, Tag* tag, Bytes* value) const;

  void handle_query_tag(const ProcessId& from, const RegisterMessage& req);
  void handle_put_data(const ProcessId& from, RegisterMessage req);
  void handle_query_data(const ProcessId& from, const RegisterMessage& req);
  void handle_query_history(const ProcessId& from, const RegisterMessage& req);
  void handle_query_tag_history(const ProcessId& from, const RegisterMessage& req);
  void handle_query_data_at(const ProcessId& from, const RegisterMessage& req);
  void handle_read_done(const ProcessId& from, const RegisterMessage& req);
  void handle_query_data_batch(const ProcessId& from, const RegisterMessage& req);

  Bytes initial_;
  /// What store() returns for never-seen objects: the lazy initialization
  /// {(t0, initial)}, materialized once here instead of per query.
  std::map<Tag, Bytes> initial_store_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> puts_applied_{0};
  /// Newest membership epoch observed (piggybacked or announced); grows
  /// monotonically via CAS-max. 0 is the initial static view.
  std::atomic<uint64_t> view_epoch_{0};
  /// Incrementally maintained sum of value bytes across all lists (updated
  /// by owner shards on insert/GC-erase; relaxed -- it is a metric).
  std::atomic<size_t> stored_bytes_{0};
};

}  // namespace bftreg::registers
