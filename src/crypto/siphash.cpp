#include "crypto/siphash.h"

#include <cstring>

namespace bftreg::crypto {

namespace {

inline uint64_t rotl(uint64_t x, int b) { return (x << b) | (x >> (64 - b)); }

// memcpy compiles to one unaligned 64-bit load; the byte-assembly loop it
// replaced did not, and halved bulk MAC throughput (the transport seals and
// verifies every payload, so this is on the critical path for large frames).
// Little-endian hosts only -- matching the serde layer's assumption.
inline uint64_t read_le64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

#define SIPROUND          \
  do {                    \
    v0 += v1;             \
    v1 = rotl(v1, 13);    \
    v1 ^= v0;             \
    v0 = rotl(v0, 32);    \
    v2 += v3;             \
    v3 = rotl(v3, 16);    \
    v3 ^= v2;             \
    v0 += v3;             \
    v3 = rotl(v3, 21);    \
    v3 ^= v0;             \
    v2 += v1;             \
    v1 = rotl(v1, 17);    \
    v1 ^= v2;             \
    v2 = rotl(v2, 32);    \
  } while (0)

}  // namespace

uint64_t siphash24(const SipHashKey& key, const void* data, size_t len) {
  const auto* in = static_cast<const uint8_t*>(data);
  uint64_t v0 = 0x736f6d6570736575ULL ^ key.k0;
  uint64_t v1 = 0x646f72616e646f6dULL ^ key.k1;
  uint64_t v2 = 0x6c7967656e657261ULL ^ key.k0;
  uint64_t v3 = 0x7465646279746573ULL ^ key.k1;

  const size_t end = len - (len % 8);
  for (size_t i = 0; i < end; i += 8) {
    const uint64_t m = read_le64(in + i);
    v3 ^= m;
    SIPROUND;
    SIPROUND;
    v0 ^= m;
  }

  uint64_t b = static_cast<uint64_t>(len) << 56;
  const size_t left = len & 7;
  for (size_t i = 0; i < left; ++i) {
    b |= static_cast<uint64_t>(in[end + i]) << (8 * i);
  }
  v3 ^= b;
  SIPROUND;
  SIPROUND;
  v0 ^= b;

  v2 ^= 0xff;
  SIPROUND;
  SIPROUND;
  SIPROUND;
  SIPROUND;
  return v0 ^ v1 ^ v2 ^ v3;
}

#undef SIPROUND

}  // namespace bftreg::crypto
