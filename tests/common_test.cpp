// Unit tests for src/common: ids, tags, serialization, rng, stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "common/serde.h"
#include "common/stats.h"
#include "common/types.h"

namespace bftreg {
namespace {

TEST(ProcessIdTest, TotalOrderIsLexicographicOnRoleThenIndex) {
  // The model requires R ∪ W ∪ S to be totally ordered (Section II-A).
  const ProcessId s0 = ProcessId::server(0);
  const ProcessId s1 = ProcessId::server(1);
  const ProcessId w0 = ProcessId::writer(0);
  const ProcessId r0 = ProcessId::reader(0);
  EXPECT_LT(s0, s1);
  EXPECT_LT(s1, w0);  // servers sort before writers
  EXPECT_LT(w0, r0);  // writers before readers
  EXPECT_EQ(s0, ProcessId::server(0));
}

TEST(ProcessIdTest, RoleHelpers) {
  EXPECT_TRUE(ProcessId::server(3).is_server());
  EXPECT_FALSE(ProcessId::server(3).is_client());
  EXPECT_TRUE(ProcessId::writer(1).is_client());
  EXPECT_TRUE(ProcessId::reader(2).is_client());
}

TEST(ProcessIdTest, ToStringIsReadable) {
  EXPECT_EQ(to_string(ProcessId::server(7)), "server:7");
  EXPECT_EQ(to_string(ProcessId::reader(0)), "reader:0");
}

TEST(TagTest, OrderIsNumberThenWriterId) {
  // Lemma 2's tie-break: equal numbers are ordered by writer id.
  const Tag a{3, ProcessId::writer(0)};
  const Tag b{3, ProcessId::writer(1)};
  const Tag c{4, ProcessId::writer(0)};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
}

TEST(TagTest, InitialTagIsSmallest) {
  const Tag t0 = Tag::initial();
  EXPECT_TRUE(t0.is_initial());
  EXPECT_LT(t0, (Tag{1, ProcessId::writer(0)}));
}

TEST(TagTest, HashDistinguishesNumAndWriter) {
  std::set<size_t> hashes;
  for (uint64_t num = 0; num < 10; ++num) {
    for (uint32_t w = 0; w < 10; ++w) {
      hashes.insert(std::hash<Tag>{}(Tag{num, ProcessId::writer(w)}));
    }
  }
  // Not a strict requirement, but collisions across a 100-element grid
  // would indicate a broken hash.
  EXPECT_GT(hashes.size(), 95u);
}

TEST(SerdeTest, RoundTripsScalars) {
  Serializer s;
  s.put_u8(0xAB);
  s.put_u16(0xBEEF);
  s.put_u32(0xDEADBEEF);
  s.put_u64(0x0123456789ABCDEFULL);
  s.put_bool(true);
  const Bytes buf = s.buffer();

  Deserializer d(buf);
  EXPECT_EQ(d.get_u8(), 0xAB);
  EXPECT_EQ(d.get_u16(), 0xBEEF);
  EXPECT_EQ(d.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(d.get_u64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(d.get_bool());
  EXPECT_TRUE(d.done());
}

TEST(SerdeTest, RoundTripsCompositeTypes) {
  Serializer s;
  s.put_tag(Tag{42, ProcessId::writer(3)});
  s.put_bytes(Bytes{1, 2, 3});
  s.put_string("hello");
  s.put_process_id(ProcessId::reader(9));
  const Bytes buf = s.buffer();

  Deserializer d(buf);
  EXPECT_EQ(d.get_tag(), (Tag{42, ProcessId::writer(3)}));
  EXPECT_EQ(d.get_bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(d.get_string(), "hello");
  EXPECT_EQ(d.get_process_id(), ProcessId::reader(9));
  EXPECT_TRUE(d.done());
}

TEST(SerdeTest, EmptyBytesRoundTrip) {
  Serializer s;
  s.put_bytes(Bytes{});
  Deserializer d(s.buffer());
  EXPECT_TRUE(d.get_bytes().empty());
  EXPECT_TRUE(d.done());
}

TEST(SerdeTest, TruncatedBufferFailsGracefully) {
  Serializer s;
  s.put_u64(12345);
  Bytes buf = s.buffer();
  buf.resize(4);  // cut the u64 in half
  Deserializer d(buf);
  EXPECT_EQ(d.get_u64(), 0u);
  EXPECT_FALSE(d.ok());
}

TEST(SerdeTest, OversizedLengthPrefixFailsGracefully) {
  // Adversarial payload: claims 2^31 bytes follow but buffer is tiny.
  Serializer s;
  s.put_u32(0x80000000u);
  s.put_u8(7);
  Deserializer d(s.buffer());
  EXPECT_TRUE(d.get_bytes().empty());
  EXPECT_FALSE(d.ok());
}

TEST(SerdeTest, InvalidRoleByteFailsGracefully) {
  Serializer s;
  s.put_u8(99);  // not a valid Role
  s.put_u32(0);
  Deserializer d(s.buffer());
  d.get_process_id();
  EXPECT_FALSE(d.ok());
}

TEST(SerdeTest, ReadPastEndFailsAndStaysFailed) {
  Deserializer d(nullptr, 0);
  EXPECT_EQ(d.get_u32(), 0u);
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.get_u8(), 0u);  // still failed, no UB
  EXPECT_FALSE(d.done());
}

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.uniform_range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ExponentialMeanIsApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 2.0);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.fork();
  // The child should not replay the parent's stream.
  Rng parent2(23);
  parent2.fork();
  EXPECT_EQ(child.next_u64(), [] {
    Rng p(23);
    Rng c = p.fork();
    return c.next_u64();
  }());
}

TEST(StatsTest, OnlineStatsBasics) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StatsTest, OnlineStatsEmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StatsTest, SamplesPercentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 0.01);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.01);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(StatsTest, SamplesSingleValue) {
  Samples s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.median(), 42.0);
  EXPECT_DOUBLE_EQ(s.p99(), 42.0);
}

TEST(StatsTest, TextTableRendersAligned) {
  TextTable t({"proto", "rounds"});
  t.add_row({"BSR", "1"});
  t.add_row({"BSR-2R", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| proto "), std::string::npos);
  EXPECT_NE(out.find("| BSR-2R | 2"), std::string::npos);
}

TEST(Fnv1aTest, KnownValueAndSensitivity) {
  const uint64_t h1 = fnv1a64("abc", 3);
  const uint64_t h2 = fnv1a64("abd", 3);
  EXPECT_NE(h1, h2);
  EXPECT_EQ(fnv1a64("", 0), 0xcbf29ce484222325ULL);
}

}  // namespace
}  // namespace bftreg
