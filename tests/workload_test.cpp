// Tests for the workload generator and the SimCluster harness itself.
#include <gtest/gtest.h>

#include "harness/sim_cluster.h"
#include "workload/workload.h"

namespace bftreg {
namespace {

TEST(WorkloadTest, GeneratesExactlyNumOps) {
  workload::WorkloadOptions o;
  o.num_ops = 123;
  workload::WorkloadGenerator gen(o);
  EXPECT_EQ(gen.all().size(), 123u);
  EXPECT_TRUE(gen.done());
}

TEST(WorkloadTest, ReadRatioIsRespected) {
  workload::WorkloadOptions o;
  o.read_ratio = 0.9;
  o.num_ops = 20000;
  workload::WorkloadGenerator gen(o);
  size_t reads = 0;
  for (const auto& op : gen.all()) reads += op.is_read ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(reads) / 20000.0, 0.9, 0.01);
}

TEST(WorkloadTest, WritesCarryValuesReadsDoNot) {
  workload::WorkloadOptions o;
  o.read_ratio = 0.5;
  o.num_ops = 100;
  o.value_size = 32;
  workload::WorkloadGenerator gen(o);
  for (const auto& op : gen.all()) {
    if (op.is_read) {
      EXPECT_TRUE(op.value.empty());
    } else {
      EXPECT_EQ(op.value.size(), 32u);
    }
  }
}

TEST(WorkloadTest, DeterministicInSeed) {
  workload::WorkloadOptions o;
  o.num_ops = 50;
  o.seed = 77;
  auto a = workload::WorkloadGenerator(o).all();
  auto b = workload::WorkloadGenerator(o).all();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].is_read, b[i].is_read);
    EXPECT_EQ(a[i].value, b[i].value);
  }
}

TEST(WorkloadTest, TaoPresetIsNearlyAllReads) {
  const auto o = workload::WorkloadOptions::facebook_tao(1000, 64);
  EXPECT_DOUBLE_EQ(o.read_ratio, 0.998);
}

TEST(WorkloadTest, MakeValueIsDeterministicAndDistinct) {
  EXPECT_EQ(workload::make_value(1, 2, 64), workload::make_value(1, 2, 64));
  EXPECT_NE(workload::make_value(1, 2, 64), workload::make_value(1, 3, 64));
  EXPECT_NE(workload::make_value(1, 2, 64), workload::make_value(2, 2, 64));
  EXPECT_EQ(workload::make_value(1, 2, 64).size(), 64u);
}

TEST(HarnessTest, RecorderCapturesOperationIntervals) {
  harness::ClusterOptions o;
  o.protocol = harness::Protocol::kBsr;
  o.config.n = 5;
  o.config.f = 1;
  harness::SimCluster cluster(o);
  cluster.write(0, Bytes{'x'});
  cluster.read(0);
  const auto& ops = cluster.recorder().ops();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].kind, checker::OpRecord::Kind::kWrite);
  EXPECT_TRUE(ops[0].completed);
  EXPECT_LT(ops[0].invoked_at, ops[0].responded_at);
  EXPECT_EQ(ops[1].kind, checker::OpRecord::Kind::kRead);
  EXPECT_GE(ops[1].invoked_at, ops[0].responded_at);
}

TEST(HarnessTest, DeterministicAcrossRuns) {
  auto run = [] {
    harness::ClusterOptions o;
    o.protocol = harness::Protocol::kBsr;
    o.config.n = 9;
    o.config.f = 2;
    o.seed = 99;
    harness::SimCluster cluster(o);
    cluster.set_byzantine(3, adversary::StrategyKind::kFabricate);
    std::vector<TimeNs> latencies;
    for (int i = 0; i < 5; ++i) {
      const auto w = cluster.write(0, Bytes{static_cast<uint8_t>(i)});
      latencies.push_back(w.completed_at - w.invoked_at);
      const auto r = cluster.read(0);
      latencies.push_back(r.completed_at - r.invoked_at);
    }
    return latencies;
  };
  EXPECT_EQ(run(), run());
}

TEST(ZipfianKeysTest, DeterministicAndInRange) {
  workload::ZipfianKeys a(64, 0.99, 42);
  workload::ZipfianKeys b(64, 0.99, 42);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t k = a.next();
    EXPECT_LT(k, 64u);
    EXPECT_EQ(k, b.next());  // same seed, same stream
  }
}

TEST(ZipfianKeysTest, SkewConcentratesOnHotKeys) {
  // At theta = 0.99 over 1000 keys the ten hottest keys absorb a large
  // share of draws; uniform would give them 1%.
  workload::ZipfianKeys z(1000, 0.99, 7);
  constexpr int kDraws = 20000;
  int hot = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (z.next() < 10) ++hot;
  }
  EXPECT_GT(hot, kDraws / 4);
  // ...and the tail is still reachable.
  workload::ZipfianKeys tail(1000, 0.99, 8);
  uint64_t max_seen = 0;
  for (int i = 0; i < kDraws; ++i) max_seen = std::max(max_seen, tail.next());
  EXPECT_GT(max_seen, 500u);
}

TEST(ZipfianKeysTest, ZeroThetaIsUniform) {
  workload::ZipfianKeys z(100, 0.0, 3);
  constexpr int kDraws = 50000;
  int first_decile = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (z.next() < 10) ++first_decile;
  }
  // 10% expected; allow generous sampling slack.
  EXPECT_GT(first_decile, kDraws / 20);
  EXPECT_LT(first_decile, kDraws / 5);
}

TEST(HarnessTest, MinServersMatchesPaperBounds) {
  EXPECT_EQ(harness::min_servers(harness::Protocol::kBsr, 1), 5u);
  EXPECT_EQ(harness::min_servers(harness::Protocol::kBsr, 2), 9u);
  EXPECT_EQ(harness::min_servers(harness::Protocol::kBcsr, 1), 6u);
  EXPECT_EQ(harness::min_servers(harness::Protocol::kBcsr, 3), 16u);
  EXPECT_EQ(harness::min_servers(harness::Protocol::kRb, 1), 4u);
}

TEST(HarnessTest, StorageAccountingSumsHonestServers) {
  harness::ClusterOptions o;
  o.protocol = harness::Protocol::kBsr;
  o.config.n = 5;
  o.config.f = 1;
  harness::SimCluster cluster(o);
  const size_t before = cluster.total_stored_bytes();
  cluster.write(0, Bytes(1000, 1));
  cluster.sim().run_until_idle();
  EXPECT_EQ(cluster.total_stored_bytes(), before + 5 * 1000);
}

}  // namespace
}  // namespace bftreg
