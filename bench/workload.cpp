#include "workload.h"

#include <cassert>

namespace bftreg::bench {

const char* to_string(KeyDist dist) {
  switch (dist) {
    case KeyDist::kZipfian: return "zipfian";
    case KeyDist::kUniform: return "uniform";
  }
  return "?";
}

YcsbWorkload::YcsbWorkload(const YcsbMix& mix, KeyDist dist, uint64_t keys,
                           uint64_t seed, double theta)
    : mix_(mix), dist_(dist), keys_(keys), rng_(seed) {
  assert(keys > 0);
  if (dist == KeyDist::kZipfian) {
    zipf_.emplace(keys, theta, seed ^ 0x5ca1ab1eULL);
  }
}

uint64_t YcsbWorkload::next_key() {
  if (dist_ == KeyDist::kUniform) return rng_.uniform(keys_);
  // ScrambledZipfian: the zipfian rank picks *how popular* the key is; the
  // hash picks *which* key holds that rank, so the hot set is not the first
  // few ids (which would make every hot key a hash-table neighbor and
  // flatter the store's cache behavior).
  const uint64_t rank = zipf_->next();
  return fnv1a64(&rank, sizeof(rank)) % keys_;
}

YcsbOp YcsbWorkload::next() {
  YcsbOp op;
  op.key = next_key();
  const double u = rng_.uniform_double();
  if (u < mix_.read) {
    op.kind = YcsbOpKind::kRead;
  } else if (u < mix_.read + mix_.update) {
    op.kind = YcsbOpKind::kUpdate;
  } else {
    op.kind = YcsbOpKind::kReadModifyWrite;
  }
  return op;
}

}  // namespace bftreg::bench
