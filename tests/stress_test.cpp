// Stress suite: heavier randomized fault-schedule fuzzing than the
// per-protocol property tests. Every case draws, from its seed: the system
// size (n, f within the protocol's bound), a split of the fault budget
// between crashed and Byzantine servers, a Byzantine strategy per faulty
// server, a random concurrent schedule of reads/writes with random value
// sizes, and possibly a writer crash mid-operation. The recorded execution
// must satisfy Definition 1 (and Definition 2 for the regular variants) in
// every single case.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "checker/consistency.h"
#include "harness/sim_cluster.h"
#include "workload/workload.h"

namespace bftreg::harness {
namespace {

using checker::CheckOptions;
using checker::check_regularity;
using checker::check_safety;

struct StressParam {
  Protocol protocol;
  uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<StressParam>& info) {
  std::string name = to_string(info.param.protocol);
  for (auto& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name + "_s" + std::to_string(info.param.seed);
}

class StressTest : public ::testing::TestWithParam<StressParam> {};

TEST_P(StressTest, RandomFaultScheduleKeepsConsistency) {
  const auto [protocol, seed] = GetParam();
  Rng rng(seed * 7919 + static_cast<uint64_t>(protocol));

  // System size within the protocol's resilience bound (+ slack).
  const size_t f = 1 + rng.uniform(protocol == Protocol::kBcsr ? 2 : 3);
  const size_t n = min_servers(protocol, f) + rng.uniform(3);

  const size_t writers = protocol == Protocol::kBcsr ? 1 : 2 + rng.uniform(2);
  const size_t readers = 2 + rng.uniform(2);

  ClusterOptions o;
  o.protocol = protocol;
  o.config.n = n;
  o.config.f = f;
  if (rng.bernoulli(0.3)) o.config.store_policy = registers::StorePolicy::kMaxOnly;
  // History pruning can starve the 2R read's second phase (the target tag
  // may be GC'd between phases); exercise it on the other protocols only.
  if (protocol != Protocol::kBsr2R && rng.bernoulli(0.2)) {
    o.config.max_history = 2 + rng.uniform(6);
  }
  o.num_writers = writers;
  o.num_readers = readers;
  o.seed = seed;
  o.delay_lo = 200 + rng.uniform(800);
  o.delay_hi = o.delay_lo + 200 + rng.uniform(2000);
  SimCluster cluster(o);

  // Split the fault budget between crashes and Byzantine servers. The RB
  // baseline's Byzantine coverage lives at the broadcast layer
  // (bracha_test); at the register layer its adversaries stay silent.
  const size_t crashes = rng.uniform(f + 1);
  std::vector<size_t> positions(n);
  for (size_t i = 0; i < n; ++i) positions[i] = i;
  rng.shuffle(positions);
  for (size_t i = 0; i < crashes; ++i) {
    cluster.crash_server(positions[i]);
  }
  for (size_t i = crashes; i < f; ++i) {
    const auto kind =
        protocol == Protocol::kRb
            ? adversary::StrategyKind::kSilent
            : adversary::kAllStrategyKinds[rng.uniform(
                  std::size(adversary::kAllStrategyKinds))];
    cluster.set_byzantine(positions[i], kind);
  }

  // Random concurrent schedule; writers may crash mid-operation.
  std::vector<std::optional<uint64_t>> wop(writers), rop(readers);
  std::vector<bool> writer_alive(writers, true);
  uint64_t counter = 0;
  const bool allow_writer_crash =
      protocol != Protocol::kBsr2R && rng.bernoulli(0.3);
  bool writer_crashed = false;

  for (int step = 0; step < 70; ++step) {
    for (size_t w = 0; w < writers; ++w) {
      if (wop[w] && cluster.op_done(*wop[w])) wop[w].reset();
    }
    for (auto& r : rop) {
      if (r && cluster.op_done(*r)) r.reset();
    }

    if (allow_writer_crash && !writer_crashed && step == 30) {
      // Crash writer 0, possibly mid-operation: its op never completes.
      cluster.crash_writer(0);
      writer_alive[0] = false;
      writer_crashed = true;
    }

    const size_t w = rng.uniform(writers);
    if (rng.bernoulli(0.35) && writer_alive[w] && !wop[w]) {
      wop[w] = cluster.start_write(
          w, workload::make_value(seed, counter++, 8 + rng.uniform(120)));
    }
    const size_t r = rng.uniform(readers);
    if (rng.bernoulli(0.5) && !rop[r]) rop[r] = cluster.start_read(r);

    cluster.sim().run_until_time(cluster.sim().now() + rng.uniform(3000));
  }
  for (size_t w = 0; w < writers; ++w) {
    if (wop[w] && writer_alive[w]) cluster.await(*wop[w]);
  }
  for (auto& r : rop) {
    if (r) cluster.await(*r);
  }

  CheckOptions copts;
  copts.reads_report_tags = protocol != Protocol::kBcsr;
  // Strict validity holds for witness-verified protocols even under these
  // adversaries; BCSR's decoder may legally emit any V-value under
  // concurrency (Def. 1(ii)), and the baseline is checked as safe only.
  copts.strict_validity =
      protocol == Protocol::kBsr || protocol == Protocol::kBsrHistory;

  const auto safe = check_safety(cluster.recorder().ops(), copts);
  EXPECT_TRUE(safe.ok) << to_string(protocol) << " seed=" << seed << ": "
                       << safe.violation << "\n" << cluster.recorder().dump();

  // Regularity needs the full-history store: kMaxOnly may skip a completed
  // write's put (it ACKs without storing when a higher concurrent tag is
  // already present), and GC may prune what the history read relies on.
  const bool regular_protocol =
      protocol == Protocol::kBsrHistory || protocol == Protocol::kBsr2R;
  if (regular_protocol && o.config.max_history == 0 &&
      o.config.store_policy == registers::StorePolicy::kAll) {
    const auto reg = check_regularity(cluster.recorder().ops(), copts);
    EXPECT_TRUE(reg.ok) << to_string(protocol) << " seed=" << seed << ": "
                        << reg.violation << "\n" << cluster.recorder().dump();
  }
}

std::vector<StressParam> stress_params() {
  std::vector<StressParam> out;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    out.push_back({Protocol::kBsr, seed});
  }
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    out.push_back({Protocol::kBsrHistory, seed});
    out.push_back({Protocol::kBsr2R, seed});
    out.push_back({Protocol::kBcsr, seed});
  }
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    out.push_back({Protocol::kRb, seed});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Fuzz, StressTest, ::testing::ValuesIn(stress_params()),
                         param_name);

}  // namespace
}  // namespace bftreg::harness
