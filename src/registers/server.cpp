#include "registers/server.h"

#include "common/log.h"

namespace bftreg::registers {

RegisterServer::RegisterServer(ProcessId self, SystemConfig config,
                               net::Transport* transport, Bytes initial)
    : self_(self),
      config_(std::move(config)),
      transport_(transport),
      initial_(std::move(initial)) {
  object_store(0);  // the default register exists from the start
}

std::map<Tag, Bytes>& RegisterServer::object_store(uint32_t object) {
  auto it = stores_.find(object);
  if (it == stores_.end()) {
    it = stores_.emplace(object, std::map<Tag, Bytes>{}).first;
    it->second.emplace(Tag::initial(), initial_);
  }
  return it->second;
}

const std::map<Tag, Bytes>* RegisterServer::find_store(uint32_t object) const {
  auto it = stores_.find(object);
  return it == stores_.end() ? nullptr : &it->second;
}

std::pair<Tag, const Bytes*> RegisterServer::newest_entry(uint32_t object) const {
  if (const auto* store = find_store(object)) {
    auto newest = store->rbegin();
    return {newest->first, &newest->second};
  }
  return {Tag::initial(), &initial_};
}

size_t RegisterServer::stored_bytes() const {
  size_t total = 0;
  for (const auto& [object, store] : stores_) {
    for (const auto& [tag, value] : store) total += value.size();
  }
  return total;
}

void RegisterServer::reply(const ProcessId& to, const RegisterMessage& msg) {
  transport_->send(self_, to, msg.encode());
}

void RegisterServer::on_message(const net::Envelope& env) {
  auto msg = RegisterMessage::parse(env.payload);
  if (!msg) {
    LOG_DEBUG << to_string(self_) << ": dropping malformed payload from "
              << to_string(env.from);
    return;
  }
  switch (msg->type) {
    case MsgType::kQueryTag:
      handle_query_tag(env.from, *msg);
      break;
    case MsgType::kPutData:
      handle_put_data(env.from, std::move(*msg));
      break;
    case MsgType::kQueryData:
      handle_query_data(env.from, *msg);
      break;
    case MsgType::kQueryHistory:
      handle_query_history(env.from, *msg);
      break;
    case MsgType::kQueryTagHistory:
      handle_query_tag_history(env.from, *msg);
      break;
    case MsgType::kQueryDataAt:
      handle_query_data_at(env.from, *msg);
      break;
    case MsgType::kReadDone:
      handle_read_done(env.from, *msg);
      break;
    case MsgType::kQueryDataBatch:
      handle_query_data_batch(env.from, *msg);
      break;
    default:
      // Response types and RB frames are not for a basic server.
      break;
  }
}

void RegisterServer::handle_query_tag(const ProcessId& from,
                                      const RegisterMessage& req) {
  RegisterMessage resp;
  resp.type = MsgType::kTagResp;
  resp.op_id = req.op_id;
  resp.object = req.object;
  resp.tag = newest_entry(req.object).first;
  reply(from, resp);
}

bool RegisterServer::apply_put(uint32_t object, const Tag& tag, Bytes value) {
  auto& store = object_store(object);
  bool added = false;
  switch (config_.store_policy) {
    case StorePolicy::kMaxOnly:
      // Fig. 3 line 5: add only if the tag beats everything in L.
      if (tag > store.rbegin()->first) {
        store.emplace(tag, std::move(value));
        added = true;
      }
      break;
    case StorePolicy::kAll:
      added = store.emplace(tag, std::move(value)).second;
      break;
  }
  if (!added) return false;
  ++puts_applied_;

  // Optional GC: drop the lowest-tagged entries beyond the budget. The
  // newest pair always survives, so QUERY-TAG / QUERY-DATA semantics are
  // untouched; only history-consulting reads feel this.
  if (config_.max_history > 0) {
    while (store.size() > config_.max_history) {
      store.erase(store.begin());
    }
  }

  // Wake any readers whose two-round get-data asked for this tag.
  if (auto it = deferred_.find({object, tag}); it != deferred_.end()) {
    RegisterMessage resp;
    resp.type = MsgType::kDataAtResp;
    resp.object = object;
    resp.tag = tag;
    resp.value = store[tag];
    for (const auto& [reader, op_id] : it->second) {
      resp.op_id = op_id;
      reply(reader, resp);
      // Unindex the satisfied waiter (its other deferred keys, if any, stay).
      if (auto rev = deferred_by_op_.find({reader, op_id});
          rev != deferred_by_op_.end()) {
        std::erase(rev->second, std::make_pair(object, tag));
        if (rev->second.empty()) deferred_by_op_.erase(rev);
      }
    }
    deferred_.erase(it);
  }
  return true;
}

void RegisterServer::handle_put_data(const ProcessId& from, RegisterMessage req) {
  apply_put(req.object, req.tag, std::move(req.value));
  // Fig. 3: the ACK is sent regardless of whether the entry was new.
  RegisterMessage ack;
  ack.type = MsgType::kAck;
  ack.op_id = req.op_id;
  ack.object = req.object;
  ack.tag = req.tag;
  reply(from, ack);
}

void RegisterServer::handle_query_data(const ProcessId& from,
                                       const RegisterMessage& req) {
  const auto [tag, value] = newest_entry(req.object);
  RegisterMessage resp;
  resp.type = MsgType::kDataResp;
  resp.op_id = req.op_id;
  resp.object = req.object;
  resp.tag = tag;
  resp.value = *value;
  reply(from, resp);
}

void RegisterServer::handle_query_history(const ProcessId& from,
                                          const RegisterMessage& req) {
  RegisterMessage resp;
  resp.type = MsgType::kHistoryResp;
  resp.op_id = req.op_id;
  resp.object = req.object;
  if (const auto* store = find_store(req.object)) {
    resp.history.reserve(store->size());
    for (const auto& [tag, value] : *store) {
      resp.history.push_back(TaggedValue{tag, value});
    }
  } else {
    resp.history.push_back(TaggedValue{Tag::initial(), initial_});
  }
  reply(from, resp);
}

void RegisterServer::handle_query_tag_history(const ProcessId& from,
                                              const RegisterMessage& req) {
  RegisterMessage resp;
  resp.type = MsgType::kTagHistoryResp;
  resp.op_id = req.op_id;
  resp.object = req.object;
  if (const auto* store = find_store(req.object)) {
    resp.tags.reserve(store->size());
    for (const auto& [tag, value] : *store) resp.tags.push_back(tag);
  } else {
    resp.tags.push_back(Tag::initial());
  }
  reply(from, resp);
}

void RegisterServer::handle_query_data_at(const ProcessId& from,
                                          const RegisterMessage& req) {
  const auto* store = find_store(req.object);
  const Bytes* value = nullptr;
  if (store != nullptr) {
    if (auto it = store->find(req.tag); it != store->end()) value = &it->second;
  } else if (req.tag == Tag::initial()) {
    value = &initial_;  // unknown object reads as its lazy initialization
  }
  if (value != nullptr) {
    RegisterMessage resp;
    resp.type = MsgType::kDataAtResp;
    resp.op_id = req.op_id;
    resp.object = req.object;
    resp.tag = req.tag;
    resp.value = *value;
    reply(from, resp);
    return;
  }
  // Not known yet: tell the reader so, and defer a real answer until the
  // corresponding PUT-DATA reaches us (channels are reliable, so unless the
  // writer crashed mid-multicast it eventually will; see the liveness
  // discussion in two_round_reader.h).
  deferred_[{req.object, req.tag}].emplace_back(from, req.op_id);
  deferred_by_op_[{from, req.op_id}].emplace_back(req.object, req.tag);
  RegisterMessage resp;
  resp.type = MsgType::kDataAtMissing;
  resp.op_id = req.op_id;
  resp.object = req.object;
  resp.tag = req.tag;
  reply(from, resp);
}

void RegisterServer::handle_query_data_batch(const ProcessId& from,
                                             const RegisterMessage& req) {
  // Cap the batch: an oversized request must not balloon server state with
  // lazily created stores (the model's clients are crash-only, but defense
  // in depth costs nothing).
  constexpr size_t kMaxBatch = 4096;
  const size_t count = std::min(req.objects.size(), kMaxBatch);

  RegisterMessage resp;
  resp.type = MsgType::kDataBatchResp;
  resp.op_id = req.op_id;
  resp.objects.assign(req.objects.begin(),
                      req.objects.begin() + static_cast<long>(count));
  resp.history.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const auto [tag, value] = newest_entry(req.objects[i]);
    resp.history.push_back(TaggedValue{tag, *value});
  }
  reply(from, resp);
}

void RegisterServer::handle_read_done(const ProcessId& from,
                                      const RegisterMessage& req) {
  // Exact-match on the op id: ids are namespaced per (client, object,
  // protocol) and therefore NOT monotone across a client's concurrent
  // operations -- a range erase (op_id <= done id) would cancel deferred
  // replies belonging to that client's still-running reads in other
  // namespaces. The reverse index pinpoints this op's deferred keys, so
  // the cancel never touches other readers' waiters.
  auto rev = deferred_by_op_.find({from, req.op_id});
  if (rev == deferred_by_op_.end()) return;
  for (const auto& key : rev->second) {
    auto it = deferred_.find(key);
    if (it == deferred_.end()) continue;
    auto& waiters = it->second;
    std::erase_if(waiters, [&](const auto& w) {
      return w.first == from && w.second == req.op_id;
    });
    if (waiters.empty()) deferred_.erase(it);
  }
  deferred_by_op_.erase(rev);
}

}  // namespace bftreg::registers
