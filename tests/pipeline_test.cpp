// Pipelined-client tests: one RegisterClient sustaining many concurrent
// operations (the op-mux tentpole), verified against the safety checker,
// plus the deadline/retry path under scripted reply loss.
//
// Why multiplexing is sound: the witness rule (f+1 identical responses,
// Lemma 1/5) and the quorum bound (n-f, Lemma 6) are counted PER OPERATION
// inside each PendingOp; 64 concurrent ops are indistinguishable -- to the
// servers and to the proofs -- from 64 well-formed virtual clients.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adversary/byzantine_server.h"
#include "checker/consistency.h"
#include "checker/execution.h"
#include "net/delay.h"
#include "registers/registers.h"
#include "sim/simulator.h"

namespace bftreg::registers {
namespace {

Bytes val(const std::string& s) { return Bytes(s.begin(), s.end()); }

/// n=5 BSR cluster (optionally one Byzantine server) + one multiplexing
/// client, with every operation recorded for the checker.
class PipelineFixture : public ::testing::Test {
 protected:
  static constexpr uint32_t kObjects = 8;

  explicit PipelineFixture(bool byzantine = true,
                           RetryPolicy retry = RetryPolicy{})
      : sim_(sim::SimConfig::with_uniform_delay(11, 500, 1'500)) {
    config_ = SystemConfig::builder().n(5).f(1).build_for_bsr().value();
    const uint32_t byz_index = byzantine ? 4u : config_.n;
    for (uint32_t i = 0; i < config_.n; ++i) {
      if (i == byz_index) continue;
      servers_.push_back(std::make_unique<RegisterServer>(
          ProcessId::server(i), config_, &sim_, Bytes{}));
      sim_.add_process(ProcessId::server(i), servers_.back().get());
    }
    if (byzantine) {
      adversary::ServerContext ctx;
      ctx.self = ProcessId::server(byz_index);
      ctx.config = config_;
      ctx.transport = &sim_;
      ctx.rng = Rng(999);
      byz_ = std::make_unique<adversary::ByzantineServer>(
          std::move(ctx),
          adversary::make_strategy(adversary::StrategyKind::kFabricate, 999));
      sim_.add_process(ctx.self, byz_.get());
    }
    ClientOptions opts;
    opts.retry = retry;
    client_ = std::make_unique<RegisterClient>(ProcessId::writer(0), config_,
                                               &sim_, opts);
    sim_.add_process(client_->id(), client_.get());
    sim_.start_all();
  }

  /// Issues a recorded write from inside the client's context.
  void issue_write(uint32_t object, Bytes value) {
    const uint64_t rec = recorder_.begin_write(client_->id(), sim_.now(), value);
    ++issued_;
    client_->write(object, std::move(value), [this, rec](const WriteResult& w) {
      recorder_.complete_write(rec, w.completed_at, w.tag);
      ++completed_;
    });
  }

  /// Issues a recorded read from inside the client's context.
  void issue_read(uint32_t object) {
    const uint64_t rec = recorder_.begin_read(client_->id(), sim_.now());
    ++issued_;
    client_->read(object, [this, rec](const ReadResult& r) {
      recorder_.complete_read(rec, r.completed_at, r.value, r.tag);
      ++completed_;
    });
  }

  sim::Simulator sim_;
  SystemConfig config_;
  std::vector<std::unique_ptr<RegisterServer>> servers_;
  std::unique_ptr<adversary::ByzantineServer> byz_;
  std::unique_ptr<RegisterClient> client_;
  checker::ExecutionRecorder recorder_;
  size_t issued_{0};
  size_t completed_{0};
};

TEST_F(PipelineFixture, SixtyFourInFlightOpsAcrossEightObjectsStaySafe) {
  // 8 objects x (4 writes + 4 reads) = 64 operations, all issued before a
  // single response arrives, all in flight at once on ONE client.
  size_t peak = 0;
  sim_.post(client_->id(), [&] {
    for (uint32_t object = 0; object < kObjects; ++object) {
      for (int k = 0; k < 4; ++k) {
        issue_write(object, val("o" + std::to_string(object) + "-w" +
                                std::to_string(k)));
        issue_read(object);
      }
    }
    peak = client_->in_flight();
  });
  ASSERT_TRUE(sim_.run_until([&] { return completed_ == 64; }));
  EXPECT_EQ(issued_, 64u);
  EXPECT_EQ(peak, 64u);
  EXPECT_EQ(completed_, 64u);
  EXPECT_TRUE(client_->idle());

  // A second wave reusing the same objects (fresh tags via the per-object
  // tag floor) interleaved with reads.
  sim_.post(client_->id(), [&] {
    for (uint32_t object = 0; object < kObjects; ++object) {
      issue_write(object, val("o" + std::to_string(object) + "-final"));
      issue_read(object);
    }
  });
  ASSERT_TRUE(sim_.run_until([&] { return completed_ == 80; }));
  EXPECT_EQ(issued_, 80u);

  // The fabricating server must not have planted a value anywhere
  // (strict validity), and safety (Def. 1) must hold per object.
  checker::CheckOptions copts;
  copts.strict_validity = true;
  const auto verdict = checker::check_safety(recorder_.ops(), copts);
  EXPECT_TRUE(verdict.ok) << verdict.violation;

  // Sequential epilogue: every object readable with its final value.
  for (uint32_t object = 0; object < kObjects; ++object) {
    ReadResult r;
    bool done = false;
    sim_.post(client_->id(), [&] {
      client_->read(object, [&](const ReadResult& res) {
        r = res;
        done = true;
      });
    });
    ASSERT_TRUE(sim_.run_until([&] { return done; }));
    EXPECT_EQ(r.value, val("o" + std::to_string(object) + "-final"));
  }
}

TEST_F(PipelineFixture, PipeliningNeverReusesALiveTagPerObject) {
  // 16 concurrent writes to ONE object from one client: the per-object tag
  // floor must hand every write a distinct tag even though their get-tag
  // phases all observe the same server state.
  std::vector<Tag> tags;
  sim_.post(client_->id(), [&] {
    for (int k = 0; k < 16; ++k) {
      const uint64_t rec =
          recorder_.begin_write(client_->id(), sim_.now(), val("w"));
      client_->write(0, val("w"), [this, rec, &tags](const WriteResult& w) {
        recorder_.complete_write(rec, w.completed_at, w.tag);
        tags.push_back(w.tag);
        ++completed_;
      });
    }
  });
  ASSERT_TRUE(sim_.run_until([&] { return completed_ == 16; }));
  std::sort(tags.begin(), tags.end());
  EXPECT_EQ(std::adjacent_find(tags.begin(), tags.end()), tags.end())
      << "two concurrent writes of one client reused a tag";
}

// --- deadline / retry under reply loss -------------------------------------

struct RetryFixture : PipelineFixture {
  static RetryPolicy policy() {
    RetryPolicy p;
    p.timeout = 10'000;
    p.max_retries = 3;
    p.backoff = 2.0;
    return p;
  }
  // Honest servers: reply loss is scripted, not adversarial.
  RetryFixture() : PipelineFixture(/*byzantine=*/false, policy()) {}
};

TEST_F(RetryFixture, DroppedRepliesTriggerRetryThenCompletion) {
  bool done = false;
  sim_.post(client_->id(), [&] {
    client_->write(0, val("v1"), [&](const WriteResult&) { done = true; });
  });
  ASSERT_TRUE(sim_.run_until([&] { return done; }));
  const TimeNs write_done_at = sim_.now();

  // Lose every server->client reply sent in the next 6us: the read's first
  // attempt collects nothing, its deadline fires, and the retransmission
  // (same op id) completes against the recovered network.
  const TimeNs cutoff = write_done_at + 6'000;
  sim_.delay_model().set_hook(
      [&](const net::Envelope& env) -> std::optional<TimeNs> {
        if (env.from.is_server() && env.to.is_client() && sim_.now() < cutoff) {
          return TimeNs{100'000'000};  // effectively lost
        }
        return std::nullopt;
      });

  ReadResult r;
  done = false;
  sim_.post(client_->id(), [&] {
    client_->read(0, [&](const ReadResult& res) {
      r = res;
      done = true;
    });
  });
  ASSERT_TRUE(sim_.run_until([&] { return done; }));

  EXPECT_EQ(r.value, val("v1"));
  EXPECT_TRUE(r.fresh);
  EXPECT_FALSE(r.timed_out);
  EXPECT_GE(r.retries, 1u);
  EXPECT_GE(client_->retransmits(), 1u);
  EXPECT_EQ(client_->timeouts(), 0u);
  EXPECT_TRUE(client_->idle());
}

TEST_F(RetryFixture, ExhaustedRetryBudgetCompletesWithTimeoutFallback) {
  // Every reply is lost forever: the op must still complete -- flagged
  // timed_out, with the protocol's conservative fallback -- instead of
  // hanging, and the mux must end up empty.
  sim_.delay_model().set_hook(
      [](const net::Envelope& env) -> std::optional<TimeNs> {
        if (env.from.is_server() && env.to.is_client()) {
          return TimeNs{1'000'000'000};
        }
        return std::nullopt;
      });

  ReadResult r;
  bool done = false;
  sim_.post(client_->id(), [&] {
    client_->read(0, [&](const ReadResult& res) {
      r = res;
      done = true;
    });
  });
  ASSERT_TRUE(sim_.run_until([&] { return done; }));

  EXPECT_TRUE(r.timed_out);
  EXPECT_FALSE(r.fresh);
  EXPECT_EQ(r.retries, 3u);
  EXPECT_EQ(r.value, Bytes{});  // fallback: the initial value v0
  EXPECT_EQ(client_->timeouts(), 1u);
  EXPECT_EQ(client_->retransmits(), 3u);
  EXPECT_TRUE(client_->idle());
}

TEST_F(RetryFixture, StragglerFromFirstAttemptStillCountsAfterRetransmit) {
  // Replies to the FIRST attempt are delayed past the deadline but not
  // lost; the retransmission goes out, and the late first-attempt replies
  // -- same op id -- arrive first and complete the operation. This is the
  // reason retransmissions reuse the op id instead of allocating afresh.
  bool done = false;
  sim_.post(client_->id(), [&] {
    client_->write(0, val("v1"), [&](const WriteResult&) { done = true; });
  });
  ASSERT_TRUE(sim_.run_until([&] { return done; }));

  const TimeNs issue_at = sim_.now();
  sim_.delay_model().set_hook(
      [&](const net::Envelope& env) -> std::optional<TimeNs> {
        // Every reply: delayed past the 10us deadline, then delivered.
        if (env.from.is_server() && env.to.is_client()) return TimeNs{12'000};
        // The retransmitted requests themselves are lost, so ONLY the
        // first-attempt stragglers can possibly complete the operation.
        if (env.to.is_server() && sim_.now() > issue_at + 6'000) {
          return TimeNs{1'000'000'000};
        }
        return std::nullopt;
      });

  ReadResult r;
  done = false;
  sim_.post(client_->id(), [&] {
    client_->read(0, [&](const ReadResult& res) {
      r = res;
      done = true;
    });
  });
  ASSERT_TRUE(sim_.run_until([&] { return done; }));

  EXPECT_EQ(r.value, val("v1"));
  EXPECT_TRUE(r.fresh);
  EXPECT_FALSE(r.timed_out);
  EXPECT_EQ(r.retries, 1u);
  EXPECT_EQ(client_->retransmits(), 1u);
  EXPECT_EQ(client_->timeouts(), 0u);
  EXPECT_TRUE(client_->idle());
}

}  // namespace
}  // namespace bftreg::registers
