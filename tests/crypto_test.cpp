// Unit tests for src/crypto: SipHash reference vectors and the
// channel-authentication layer.
#include <gtest/gtest.h>

#include "crypto/auth.h"
#include "crypto/siphash.h"

namespace bftreg::crypto {
namespace {

// Reference key from the SipHash paper: k = 000102...0f.
SipHashKey reference_key() {
  return SipHashKey{0x0706050403020100ULL, 0x0f0e0d0c0b0a0908ULL};
}

// Input for vector i is the byte string 00 01 02 ... (i-1).
Bytes reference_input(size_t len) {
  Bytes b(len);
  for (size_t i = 0; i < len; ++i) b[i] = static_cast<uint8_t>(i);
  return b;
}

TEST(SipHashTest, ReferenceVectorEmpty) {
  EXPECT_EQ(siphash24(reference_key(), reference_input(0)), 0x726fdb47dd0e0e31ULL);
}

TEST(SipHashTest, ReferenceVectorOneByte) {
  EXPECT_EQ(siphash24(reference_key(), reference_input(1)), 0x74f839c593dc67fdULL);
}

TEST(SipHashTest, ReferenceVectorEightBytes) {
  EXPECT_EQ(siphash24(reference_key(), reference_input(8)), 0x93f5f5799a932462ULL);
}

TEST(SipHashTest, ReferenceVectorFifteenBytes) {
  EXPECT_EQ(siphash24(reference_key(), reference_input(15)), 0xa129ca6149be45e5ULL);
}

TEST(SipHashTest, KeySensitivity) {
  const Bytes msg = reference_input(32);
  const SipHashKey k1{1, 2};
  const SipHashKey k2{1, 3};
  EXPECT_NE(siphash24(k1, msg), siphash24(k2, msg));
}

TEST(SipHashTest, MessageSensitivity) {
  const SipHashKey k{7, 9};
  Bytes a = reference_input(64);
  Bytes b = a;
  b[63] ^= 1;
  EXPECT_NE(siphash24(k, a), siphash24(k, b));
}

TEST(KeyRegistryTest, ChannelKeysAreDirectional) {
  KeyRegistry reg(0xDEADBEEF);
  const auto ab = reg.channel_key(ProcessId::writer(0), ProcessId::server(0));
  const auto ba = reg.channel_key(ProcessId::server(0), ProcessId::writer(0));
  EXPECT_FALSE(ab == ba);
}

TEST(KeyRegistryTest, KeysAreStable) {
  KeyRegistry reg(42);
  const auto k1 = reg.channel_key(ProcessId::reader(1), ProcessId::server(2));
  const auto k2 = reg.channel_key(ProcessId::reader(1), ProcessId::server(2));
  EXPECT_TRUE(k1 == k2);
}

TEST(KeyRegistryTest, DifferentMastersGiveDifferentKeys) {
  KeyRegistry a(1);
  KeyRegistry b(2);
  EXPECT_FALSE(a.channel_key(ProcessId::server(0), ProcessId::server(1)) ==
               b.channel_key(ProcessId::server(0), ProcessId::server(1)));
}

TEST(AuthenticatorTest, SealVerifyRoundTrip) {
  Authenticator auth{KeyRegistry(99)};
  const Bytes payload{1, 2, 3, 4};
  const auto mac = auth.seal(ProcessId::writer(0), ProcessId::server(3), payload);
  EXPECT_TRUE(auth.verify(ProcessId::writer(0), ProcessId::server(3), payload, mac));
}

TEST(AuthenticatorTest, RejectsTamperedPayload) {
  Authenticator auth{KeyRegistry(99)};
  Bytes payload{1, 2, 3, 4};
  const auto mac = auth.seal(ProcessId::writer(0), ProcessId::server(3), payload);
  payload[0] ^= 0xFF;
  EXPECT_FALSE(auth.verify(ProcessId::writer(0), ProcessId::server(3), payload, mac));
}

TEST(AuthenticatorTest, RejectsSenderSpoofing) {
  // A Byzantine server re-using a MAC while claiming a different sender --
  // the attack the paper's signature assumption rules out (Section II-A).
  Authenticator auth{KeyRegistry(99)};
  const Bytes payload{9, 9, 9};
  const auto mac = auth.seal(ProcessId::server(0), ProcessId::reader(0), payload);
  EXPECT_FALSE(auth.verify(ProcessId::server(1), ProcessId::reader(0), payload, mac));
}

TEST(AuthenticatorTest, RejectsRedirectedReceiver) {
  Authenticator auth{KeyRegistry(99)};
  const Bytes payload{5};
  const auto mac = auth.seal(ProcessId::server(0), ProcessId::reader(0), payload);
  EXPECT_FALSE(auth.verify(ProcessId::server(0), ProcessId::reader(1), payload, mac));
}

}  // namespace
}  // namespace bftreg::crypto
