// Register server: Fig. 3 (BSR) / Fig. 6 (BCSR), plus the responses needed
// by the Section III-C regularity extensions.
//
// The server is value-agnostic: for BSR the stored bytes are full register
// values, for BCSR they are this server's coded elements; the protocol logic
// is identical (the paper's Figs. 3 and 6 differ only in what `v` is). It
// serves the model's whole set of shared variables (Section II-B): every
// request names an object id, and the server keeps one list L per object,
// lazily initialized to {(t0, initial)}.
//
// Sharded dispatch (SystemConfig::server_shards, default 1): the object
// table is split into shards keyed hash(object) % shards, and the server
// asks its transport for one delivery context per shard (delivery_shards /
// shard_of below). Every message that names an object routes to the shard
// that owns it, so each shard's store (a CompactObjectStore -- flat-hash
// object table, slab-backed logs; see registers/object_store.h) is touched
// by exactly one mailbox thread and needs no lock. The one cross-shard
// read -- QUERY-DATA-BATCH, whose object list can span owners -- goes
// through a per-object seqlock snapshot (common/seqlock.h) of the newest
// (tag, value) pair, published by the owning shard on every applied put and
// readable from any thread. QUERY-TAG and QUERY-DATA answer from the same
// snapshot, keeping the read fast path off the shard's table entirely.
//
// Write coalescing: transports that drain mailbox batches bracket each
// batch with on_batch_begin/on_batch_end. Inside a batch, PUT-DATAs apply
// to the logs immediately but defer the seqlock publish, the deferred-
// reader wake-ups, and the ACKs until the batch closes -- so N puts to one
// hot object cost one publish and one reply sweep instead of N. Any
// non-put message for the shard flushes first, so same-shard reads never
// observe the pre-publish window; an ACK is never sent before its put's
// publish, so the writer-visible semantics (Fig. 3: ack => stored) are
// exactly the unbatched ones. Transports without batch hooks (the
// simulator) simply never open a batch and get the immediate-publish path.
//
// Supported requests:
//   QUERY-TAG           -> TAG-RESP(max tag in L)              (get-tag-resp)
//   PUT-DATA(t, v)      -> ACK; L grows per StorePolicy        (put-data-resp)
//   QUERY-DATA          -> DATA-RESP(max pair in L)            (get-data-resp)
//   QUERY-HISTORY       -> HISTORY-RESP(entire L)      (history regularity fix)
//   QUERY-TAG-HISTORY   -> TAG-HISTORY-RESP(all tags)     (2R read, phase one)
//   QUERY-DATA-AT(t)    -> DATA-AT-RESP(t, v) now or deferred until t arrives;
//                          DATA-AT-MISSING immediately if unknown
//   READ-DONE           -> drops any deferred queries from that reader
//   QUERY-DATA-BATCH    -> DATA-BATCH-RESP: the newest pair of every object
//                          named in the request (extension: one-shot multi-get)
#pragma once

#include <atomic>
#include <memory>
#include <utility>
#include <vector>

#include "common/flat_hash.h"
#include "net/transport.h"
#include "registers/config.h"
#include "registers/messages.h"
#include "registers/object_store.h"

namespace bftreg::registers {

class RegisterServer : public net::IProcess {
 public:
  /// `initial` is what this server stores under the distinguished tag t0
  /// for every object: the register's v0 for BSR, or this server's coded
  /// element Phi_i(v0) for BCSR.
  RegisterServer(ProcessId self, SystemConfig config, net::Transport* transport,
                 Bytes initial);

  void on_message(const net::Envelope& env) override;

  /// One delivery context per object-table shard (SystemConfig::
  /// server_shards). Durable subclasses that serialize through a WAL pin
  /// this back to 1.
  uint32_t delivery_shards() const override;

  /// Peeks the object id out of the (not yet parsed) wire payload and
  /// returns its owner shard. Pure; runs on the sender's thread. Malformed
  /// or too-short payloads go to shard 0, where the full defensive parse
  /// rejects them.
  uint32_t shard_of(const net::Envelope& env) const override;

  /// Mailbox batch brackets (write coalescing; see file comment). Called by
  /// batching transports on the shard's delivery thread.
  void on_batch_begin(uint32_t shard) override;
  void on_batch_end(uint32_t shard) override;

  // --- introspection (tests, storage accounting for E4) -------------------
  // Read-only and never materializing: asking about an object this server
  // has never stored answers as its lazy initialization {(t0, initial)}
  // without creating state. Callers must be quiescent (no in-flight
  // deliveries) -- these walk shard-private stores without locks.

  /// The list L for `object`, materialized into owned pairs (ascending by
  /// tag); {(t0, initial)} if this server has never heard of the object.
  std::vector<TaggedValue> store(uint32_t object = 0) const;
  Tag max_tag(uint32_t object = 0) const { return newest_entry(object).first; }
  Bytes max_value(uint32_t object = 0) const {
    return newest_entry(object).second;
  }

  /// Total payload bytes stored across every object (the paper's
  /// storage-cost metric). Maintained incrementally by apply_put; debug
  /// builds cross-check against a full walk.
  size_t stored_bytes() const;

  size_t objects_known() const;
  std::vector<uint32_t> object_ids() const;
  uint64_t puts_applied() const {
    return puts_applied_.load(std::memory_order_relaxed);
  }

  // --- dynamic membership (reconfiguration extension) ---------------------

  /// The newest membership epoch this server has evidence for. Stamped
  /// into every outgoing reply so clients track view changes by piggyback.
  uint64_t view_epoch() const {
    return view_epoch_.load(std::memory_order_acquire);
  }

  /// Announces a view change: sends VIEW-ANNOUNCE(epoch, members) to every
  /// recipient (typically the full server set plus known clients). An empty
  /// `members` list means "the full static set". Adopts `epoch` locally
  /// first, so this server's own replies immediately carry it.
  void broadcast_view(uint64_t epoch, const std::vector<uint32_t>& members,
                      const std::vector<ProcessId>& recipients);

 protected:
  /// Inserts (tag, value) according to the store policy; returns true if the
  /// entry was added. Also satisfies deferred QUERY-DATA-AT readers.
  /// Virtual so durable servers (storage::PersistentRegisterServer) can
  /// interpose write-ahead logging. Runs on `object`'s owner shard.
  virtual bool apply_put(uint32_t object, const Tag& tag, Bytes value);

  /// Stamps the current view epoch into `msg` (hence non-const) and sends
  /// it. Every reply path funnels through here so epoch piggybacking cannot
  /// be forgotten by a handler.
  void reply(const ProcessId& to, RegisterMessage& msg);

  /// Monotonic fold of an observed epoch into view_epoch_ (CAS-max; any
  /// shard thread). Called for every parsed message so a server that missed
  /// a VIEW-ANNOUNCE still converges from request traffic.
  void observe_epoch(uint64_t epoch);

  /// QUERY-OBJECTS -> OBJECTS-RESP: every object id this server has
  /// materialized (capped; see .cpp). Lock-free via the per-shard indexes,
  /// so any shard thread may serve it for a recovering peer.
  void handle_query_objects(const ProcessId& from, const RegisterMessage& req);

  /// Newest (tag, value) of `object` without creating its store.
  std::pair<Tag, Bytes> newest_entry(uint32_t object) const;

  const ProcessId self_;
  const SystemConfig config_;
  net::Transport* const transport_;

 private:
  struct ObjectTagHash {
    size_t operator()(const std::pair<uint32_t, Tag>& k) const {
      const size_t h = std::hash<Tag>{}(k.second);
      return h ^ (k.first + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    }
  };
  struct OpKeyHash {
    size_t operator()(const std::pair<ProcessId, uint64_t>& k) const {
      const size_t h = std::hash<ProcessId>{}(k.first);
      return h ^ (k.second + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    }
  };

  /// Everything one mailbox shard owns. No locks: the transport guarantees
  /// all messages for this shard's objects arrive on one thread.
  struct Shard {
    Shard(const Bytes& initial, StorePolicy policy, size_t max_history)
        : store(initial, policy, max_history) {}

    /// Object table + per-object logs L + newest snapshots.
    CompactObjectStore store;
    /// Readers waiting for a tag they asked about that we have not yet
    /// seen: (object, tag) -> [(reader, op_id)].
    common::FlatHashMap<std::pair<uint32_t, Tag>,
                        std::vector<std::pair<ProcessId, uint64_t>>,
                        ObjectTagHash>
        deferred;
    /// Reverse index: (reader, op_id) -> the deferred keys that hold its
    /// waiters, so READ-DONE cancels with two targeted lookups instead of
    /// sweeping every deferred entry. An op names one object, so all its
    /// keys land in this shard with it.
    common::FlatHashMap<std::pair<ProcessId, uint64_t>,
                        std::vector<std::pair<uint32_t, Tag>>, OpKeyHash>
        deferred_by_op;

    // --- write-coalescing state (owner thread only) ----------------------
    /// True between on_batch_begin and on_batch_end for this shard.
    bool in_batch{false};
    /// Replies (ACKs and deferred-reader DATA-AT-RESPs) held back until the
    /// batch's publishes land, in arrival order.
    std::vector<std::pair<ProcessId, RegisterMessage>> pending_out;
    /// Objects whose logs changed this batch but whose newest snapshot is
    /// not yet published. Duplicates allowed; the flush dedups.
    std::vector<uint32_t> pending_dirty;
    /// Batch-scoped memo of cross-shard newest reads: several QUERY-DATA-
    /// BATCHes in one mailbox batch cost one seqlock read per object.
    common::FlatHashMap<uint32_t, TaggedValue> batch_read_cache;
  };

  uint32_t owner_shard(uint32_t object) const;
  Shard& shard_for(uint32_t object);
  const Shard& shard_for(uint32_t object) const;
  /// Cross-shard newest read through the seqlock cache; false when the
  /// object was never materialized (caller answers {t0, initial_}).
  bool read_newest(uint32_t object, Tag* tag, Bytes* value) const;
  /// Publishes every dirty object's newest pair, then releases the held
  /// replies, then clears the batch memo. No-op when nothing is pending.
  void flush_batch(Shard& shard);

  void handle_query_tag(const ProcessId& from, const RegisterMessage& req);
  void handle_put_data(const ProcessId& from, RegisterMessage req);
  void handle_query_data(const ProcessId& from, const RegisterMessage& req);
  void handle_query_history(const ProcessId& from, const RegisterMessage& req);
  void handle_query_tag_history(const ProcessId& from, const RegisterMessage& req);
  void handle_query_data_at(const ProcessId& from, const RegisterMessage& req);
  void handle_read_done(const ProcessId& from, const RegisterMessage& req);
  void handle_query_data_batch(const ProcessId& from, const RegisterMessage& req);

  Bytes initial_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> puts_applied_{0};
  /// Newest membership epoch observed (piggybacked or announced); grows
  /// monotonically via CAS-max. 0 is the initial static view.
  std::atomic<uint64_t> view_epoch_{0};
  /// Incrementally maintained sum of value bytes across all lists (updated
  /// by owner shards on insert/GC-erase; relaxed -- it is a metric).
  std::atomic<size_t> stored_bytes_{0};
};

}  // namespace bftreg::registers
