// durable_cluster: servers that survive restarts.
//
// The paper's fail-stop servers never come back; real deployments restart
// them. This example runs BSR with write-ahead-logging servers
// (storage::PersistentRegisterServer), kills and revives one server
// between operations, and shows (a) the revived server resumes from its
// logged state -- making it indistinguishable from a slow-but-honest
// server, which the protocol tolerates by design -- and (b) what the log
// costs and what compaction reclaims.
//
//   ./build/examples/durable_cluster
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "registers/registers.h"
#include "sim/simulator.h"
#include "storage/persistent_server.h"
#include "workload/workload.h"

using namespace bftreg;

int main() {
  const std::string wal_dir =
      (std::filesystem::temp_directory_path() / "bftreg_durable_example").string();
  std::filesystem::create_directories(wal_dir);

  sim::Simulator sim(sim::SimConfig::with_uniform_delay(17, 500, 1500));
  registers::SystemConfig cfg;
  cfg.n = 5;
  cfg.f = 1;
  // Keep only the two newest versions per server so compaction has
  // superseded log entries to reclaim.
  cfg.max_history = 2;

  auto wal_path = [&](uint32_t i) {
    return wal_dir + "/server-" + std::to_string(i) + ".wal";
  };
  for (uint32_t i = 0; i < cfg.n; ++i) std::remove(wal_path(i).c_str());

  std::vector<std::unique_ptr<storage::PersistentRegisterServer>> servers;
  for (uint32_t i = 0; i < cfg.n; ++i) {
    servers.push_back(std::make_unique<storage::PersistentRegisterServer>(
        ProcessId::server(i), cfg, &sim, Bytes{}, wal_path(i)));
    sim.add_process(ProcessId::server(i), servers.back().get());
  }
  registers::BsrWriter writer(ProcessId::writer(0), cfg, &sim);
  registers::BsrReader reader(ProcessId::reader(0), cfg, &sim);
  sim.add_process(ProcessId::writer(0), &writer);
  sim.add_process(ProcessId::reader(0), &reader);

  auto write = [&](const std::string& v) {
    bool done = false;
    writer.start_write(Bytes(v.begin(), v.end()),
                       [&](const registers::WriteResult&) { done = true; });
    sim.run_until([&] { return done; });
    sim.run_until_idle();
  };
  auto read = [&] {
    bool done = false;
    std::string out;
    reader.start_read([&](const registers::ReadResult& r) {
      out.assign(r.value.begin(), r.value.end());
      done = true;
    });
    sim.run_until([&] { return done; });
    return out;
  };

  std::printf("durable BSR cluster (n=5, f=1), one WAL per server\n\n");
  for (int i = 0; i < 20; ++i) write("version-" + std::to_string(i));
  std::printf("after 20 writes: read() -> \"%s\"\n", read().c_str());
  std::printf("server 0 WAL: %ju bytes\n",
              static_cast<uintmax_t>(std::filesystem::file_size(wal_path(0))));

  // Restart server 0: destroy the process object, recover from its WAL.
  std::printf("\nrestarting server 0 ...\n");
  servers[0] = std::make_unique<storage::PersistentRegisterServer>(
      ProcessId::server(0), cfg, &sim, Bytes{}, wal_path(0));
  sim.add_process(ProcessId::server(0), servers[0].get());
  std::printf("  recovered %zu records (%zu torn bytes discarded)\n",
              servers[0]->recovered_records(),
              servers[0]->recovered_truncated_bytes());
  std::printf("  server 0 newest tag: %s\n",
              to_string(servers[0]->max_tag()).c_str());
  std::printf("read() after recovery -> \"%s\"\n", read().c_str());

  // Compaction drops superseded versions.
  const auto before = std::filesystem::file_size(wal_path(0));
  servers[0]->compact();
  const auto after = std::filesystem::file_size(wal_path(0));
  std::printf("\ncompaction: WAL %ju -> %ju bytes\n",
              static_cast<uintmax_t>(before), static_cast<uintmax_t>(after));

  write("after-compaction");
  std::printf("one more write, read() -> \"%s\"\n", read().c_str());
  return 0;
}
