#include "workload/workload.h"

#include <cassert>
#include <cmath>

namespace bftreg::workload {

WorkloadGenerator::WorkloadGenerator(WorkloadOptions options)
    : options_(options), rng_(options.seed) {}

Op WorkloadGenerator::next() {
  assert(!done());
  ++emitted_;
  Op op;
  op.is_read = rng_.bernoulli(options_.read_ratio);
  if (!op.is_read) {
    op.value = make_value(options_.seed, write_counter_++, options_.value_size);
  }
  return op;
}

std::vector<Op> WorkloadGenerator::all() {
  std::vector<Op> ops;
  ops.reserve(remaining());
  while (!done()) ops.push_back(next());
  return ops;
}

Bytes make_value(uint64_t seed, uint64_t index, size_t size) {
  Bytes out(size);
  uint64_t h = fnv1a64(&index, sizeof(index), seed ^ 0x77777777u);
  for (size_t i = 0; i < size; ++i) {
    out[i] = static_cast<uint8_t>(h >> ((i % 8) * 8));
    if (i % 8 == 7) h = fnv1a64(&h, sizeof(h));
  }
  return out;
}

namespace {

double zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t k = 1; k <= n; ++k) sum += std::pow(1.0 / static_cast<double>(k), theta);
  return sum;
}

}  // namespace

ZipfianKeys::ZipfianKeys(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), zetan_(zeta(n, theta)), rng_(seed) {
  assert(n > 0);
  assert(theta >= 0.0 && theta < 1.0);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta(2, theta) / zetan_);
}

uint64_t ZipfianKeys::next() {
  const double u = rng_.uniform_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto k = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return k >= n_ ? n_ - 1 : k;
}

}  // namespace bftreg::workload
