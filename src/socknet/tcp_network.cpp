#include "socknet/tcp_network.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/serde.h"

namespace bftreg::socknet {

namespace {

constexpr size_t kMaxFrame = 64 * 1024 * 1024;  // sanity cap: 64 MiB
/// Smallest useful recv() target; below this the chunk is rolled/reused.
constexpr size_t kMinRecv = 4096;
/// iovec budget per sendmsg (well under any platform's IOV_MAX).
constexpr size_t kMaxIov = 256;
/// Per-connection budget for the best-effort flush at stop().
constexpr int kDrainMs = 100;

uint32_t load_le32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

void store_le32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

void store_le64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

}  // namespace

struct TcpNetwork::Endpoint {
  ProcessId pid;
  net::IProcess* process{nullptr};
  // Atomic: stop() publishes -1 while loop threads may still be reading it.
  std::atomic<int> listen_fd{-1};
  uint16_t port{0};
  /// hash(pid) % loop shards: owns the listener, dialed conns and timers.
  size_t home_shard{0};
  /// delivery shard -> pooled mailbox consumer index (round-robin at
  /// registration, so the shards of one process spread across consumers).
  std::vector<size_t> mail_ctx;

  // Outbound routing: send() appends sealed frames under out_mu; the
  // owning loop shard pulls whole queues and flushes them with sendmsg.
  // No syscall ever runs under out_mu (blocking-in-lock lint rule).
  Mutex out_mu;
  std::map<ProcessId, OutQueue> out GUARDED_BY(out_mu);

  // TestHooks fault-injection switches, honored by the loop shards.
  std::atomic<bool> writes_paused{false};
  std::atomic<bool> reads_paused{false};

  // Receive-chunk recycler; shared so payload deleters can outlive us.
  std::shared_ptr<ChunkPool> pool;

  // Receive-path accounting (loop shards write, TestHooks reads).
  std::atomic<uint64_t> chunks_allocated{0};
  std::atomic<uint64_t> tail_bytes_copied{0};
  std::atomic<uint64_t> payload_bytes_delivered{0};
  // EPOLLOUT state-machine accounting.
  std::atomic<uint64_t> epollout_arms{0};
  std::atomic<uint64_t> epollout_wakes{0};
  std::atomic<uint64_t> partial_writes{0};
};

/// One full-duplex TCP connection, owned by exactly one loop shard: every
/// field is touched only on that shard's thread (stop() reclaims leftovers
/// after the join). A dialed conn knows its peer from birth; an accepted
/// conn learns it from the first authenticated frame and is then adopted
/// as the outbound route to that peer.
struct TcpNetwork::Conn {
  int fd{-1};
  size_t shard{0};
  Endpoint* ep{nullptr};
  ProcessId peer{};
  bool peer_known{false};
  bool inbound{false};
  bool connecting{false};  // nonblocking connect() in flight
  bool want_write{false};  // EPOLLOUT armed: short write pending resume
  bool reading{true};      // EPOLLIN armed (TestHooks::pause_reads clears)
  uint32_t armed{0};       // epoll mask currently registered
  ConnState rd;
  std::deque<OutFrame> inflight;  // handed over by flush_task
  size_t wr_offset{0};            // bytes of inflight.front() on the wire
};

TcpNetwork::TcpNetwork(TcpConfig config)
    : auth_(crypto::KeyRegistry(config.master_secret)),
      config_(config),
      opts_(config.options.resolved()),
      epoch_(std::chrono::steady_clock::now()),
      loop_(opts_.loop_shards),
      mail_(opts_.mailbox_shards),
      shard_conns_(loop_.size()) {}

TcpNetwork::~TcpNetwork() {
  stop();
  // Endpoints registered but never start()ed still own their listener.
  for (auto& [pid, ep] : endpoints_) {
    const int lfd = ep->listen_fd.exchange(-1);
    if (lfd >= 0) ::close(lfd);
  }
}

TimeNs TcpNetwork::now() const {
  return static_cast<TimeNs>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now() - epoch_)
                                 .count());
}

TcpNetwork::Endpoint* TcpNetwork::find(const ProcessId& pid) {
  auto it = endpoints_.find(pid);
  return it == endpoints_.end() ? nullptr : it->second.get();
}

const TcpNetwork::Endpoint* TcpNetwork::find(const ProcessId& pid) const {
  auto it = endpoints_.find(pid);
  return it == endpoints_.end() ? nullptr : it->second.get();
}

uint16_t TcpNetwork::port_of(const ProcessId& pid) const {
  const Endpoint* ep = find(pid);
  return ep == nullptr ? 0 : ep->port;
}

void TcpNetwork::add_process(const ProcessId& pid, net::IProcess* process,
                             bool listen) {
  assert(!running_.load());
  auto ep = std::make_unique<Endpoint>();
  ep->pid = pid;
  ep->process = process;
  ep->home_shard = loop_.shard_of(pid);
  ep->pool = std::make_shared<ChunkPool>(opts_.recv_pool_bytes);
  const uint32_t nctx = std::max<uint32_t>(1, process->delivery_shards());
  ep->mail_ctx.reserve(nctx);
  for (uint32_t s = 0; s < nctx; ++s) ep->mail_ctx.push_back(mail_.assign_context());

  if (listen) {
    const int listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    assert(listen_fd >= 0);
    int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = ::inet_addr(config_.host);
    addr.sin_port = 0;  // ephemeral
    [[maybe_unused]] int rc =
        ::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    assert(rc == 0);
    rc = ::listen(listen_fd, 1024);
    assert(rc == 0);

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len);
    ep->port = ntohs(bound.sin_port);
    ep->listen_fd.store(listen_fd);
  }

  endpoints_[pid] = std::move(ep);
}

void TcpNetwork::start() {
  [[maybe_unused]] const bool was_running = running_.exchange(true);
  assert(!was_running);
  {
    // Pairwise-key precompute is O(k^2); a client fleet would pay millions
    // of derivations for pairs that never talk. Full precompute for small
    // clusters; above the cap, only pairs touching a server (clients talk
    // exclusively to servers in every register protocol here).
    std::vector<ProcessId> pids;
    pids.reserve(endpoints_.size());
    for (const auto& [pid, ep] : endpoints_) pids.push_back(pid);
    if (pids.size() <= 256) {
      auth_.precompute(pids);
    } else {
      std::vector<ProcessId> servers;
      for (const ProcessId& p : pids) {
        if (p.is_server()) servers.push_back(p);
      }
      auth_.precompute_pairs(servers, pids);
    }
  }
  mail_.start();
  for (auto& [pid, ep] : endpoints_) {
    Endpoint* e = ep.get();
    enqueue(e, [e] { e->process->on_start(); });
  }
  loop_.start();
  // Hand each listener to its home shard (fd registration is loop-thread
  // only). Connections arriving before the task runs wait in the backlog.
  for (auto& [pid, ep] : endpoints_) {
    Endpoint* e = ep.get();
    if (e->listen_fd.load() < 0) continue;
    loop_.shard(e->home_shard).post([this, e] {
      loop_.shard(e->home_shard)
          .add_fd(e->listen_fd.load(), EPOLLIN,
                  [this, e](uint32_t) { accept_ready(e); });
    });
  }
}

bool TcpNetwork::on_internal_thread() const {
  return loop_.on_loop_thread() || mail_.on_pool_thread();
}

void TcpNetwork::stop() {
  // No-op before start() by contract (nothing to shut down), and
  // idempotent after it: only the winner of the exchange proceeds.
  if (!running_.exchange(false)) return;
  assert(!on_internal_thread() && "stop() called from a network-owned thread");

  // Best-effort drain: force-flush every non-empty queue (tasks run either
  // in-loop or in the shard's final task drain), then a per-shard rundown
  // that waits boundedly for writability and sheds what will not go.
  for (auto& [pid, ep] : endpoints_) {
    ep->writes_paused.store(false, std::memory_order_relaxed);
    std::vector<ProcessId> dests;
    {
      MutexLock lock(ep->out_mu);
      for (const auto& [to, q] : ep->out) {
        if (q.queued_bytes > 0) dests.push_back(to);
      }
    }
    for (const ProcessId& to : dests) schedule_flush(ep.get(), to);
  }
  for (size_t s = 0; s < loop_.size(); ++s) {
    loop_.shard(s).post([this, s] { drain_shard(s); });
  }
  loop_.stop();
  // Loop shards are gone, so nothing publishes new deliveries; the pool
  // drains whatever is still queued before its consumers exit.
  mail_.stop();

  // All threads joined: reclaim every fd the shards still owned.
  for (auto& conns : shard_conns_) {
    for (auto& [fd, c] : conns) ::close(fd);
    conns.clear();
  }
  for (auto& [pid, ep] : endpoints_) {
    const int lfd = ep->listen_fd.exchange(-1);
    if (lfd >= 0) ::close(lfd);
  }
}

// --- delivery --------------------------------------------------------------

void TcpNetwork::enqueue(Endpoint* ep, std::function<void()> fn) {
  // Tasks (on_start, post, timer fires) always run in context 0 so they
  // keep the single-context guarantee protocol clients rely on.
  if (mail_.shard(ep->mail_ctx[0])
          .push_item(runtime::MailItem{nullptr, {}, std::move(fn)})) {
    metrics_.on_mailbox_overflow();
  }
}

void TcpNetwork::deliver(Endpoint* ep, net::Envelope env) {
  net::IProcess* proc = ep->process;
  // shard_of runs on the loop thread by contract (pure function of the
  // envelope); the modulo keeps a buggy override in range.
  uint32_t shard = 0;
  if (ep->mail_ctx.size() > 1) {
    shard = proc->shard_of(env) % static_cast<uint32_t>(ep->mail_ctx.size());
  }
  if (mail_.shard(ep->mail_ctx[shard])
          .push_item(runtime::MailItem{proc, std::move(env), nullptr, shard})) {
    metrics_.on_mailbox_overflow();
  }
}

// --- inbound ---------------------------------------------------------------

void TcpNetwork::accept_ready(Endpoint* ep) {
  const int lfd = ep->listen_fd.load();
  if (lfd < 0) return;
  for (;;) {
    const int fd = ::accept4(lfd, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) return;  // EAGAIN (drained) or listener closing
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->shard = loop_.next_conn_shard();
    conn->ep = ep;
    conn->inbound = true;
    conn->reading = !ep->reads_paused.load(std::memory_order_relaxed);
    if (conn->shard == ep->home_shard) {
      register_conn(std::move(conn));
      continue;
    }
    // Hand the fd to its owning shard (raw release: std::function needs a
    // copyable closure, and the registry takes ownership back on arrival).
    Conn* raw = conn.release();
    loop_.shard(raw->shard).post(
        [this, raw] { register_conn(std::unique_ptr<Conn>(raw)); });
  }
}

void TcpNetwork::register_conn(std::unique_ptr<Conn> conn) {
  Conn* c = conn.get();
  uint32_t mask = 0;
  if (c->reading && !c->connecting) mask |= EPOLLIN;
  if (c->want_write || c->connecting) mask |= EPOLLOUT;
  c->armed = mask;
  loop_.shard(c->shard).add_fd(c->fd, mask,
                               [this, c](uint32_t ev) { on_conn_event(c, ev); });
  shard_conns_[c->shard][c->fd] = std::move(conn);
}

void TcpNetwork::update_conn_events(Conn* c) {
  uint32_t mask = 0;
  if (c->reading && !c->connecting) mask |= EPOLLIN;
  if (c->want_write || c->connecting) mask |= EPOLLOUT;
  if (mask != c->armed) {
    loop_.shard(c->shard).mod_fd(c->fd, mask);
    c->armed = mask;
  }
}

void TcpNetwork::on_conn_event(Conn* c, uint32_t events) {
  if (c->connecting) {
    if ((events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) == 0) return;
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(c->fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if ((events & (EPOLLERR | EPOLLHUP)) != 0 || err != 0) {
      conn_failed(c);
      return;
    }
    c->connecting = false;
    try_write(c);  // flush what queued while the connect was in flight
    return;
  }
  if ((events & EPOLLIN) != 0 && c->reading) {
    if (!read_conn(c)) {
      conn_failed(c);
      return;
    }
  }
  if ((events & EPOLLOUT) != 0) {
    c->ep->epollout_wakes.fetch_add(1, std::memory_order_relaxed);
    if (!try_write(c)) return;  // conn died mid-flush
  }
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) conn_failed(c);
}

bool TcpNetwork::read_conn(Conn* c) {
  for (;;) {
    if (!ensure_recv_space(c->ep, c->rd)) return false;
    Chunk& chunk = *c->rd.chunk;
    const ssize_t r =
        ::recv(c->fd, chunk.data.get() + chunk.filled, chunk.cap - chunk.filled, 0);
    if (r > 0) {
      chunk.filled += static_cast<size_t>(r);
      if (!parse_frames(c)) return false;
      continue;  // drain until EAGAIN; level-triggered epoll backs us up
    }
    if (r == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
}

/// Pops a pooled chunk of at least `min_cap` or allocates a fresh one. The
/// returned shared_ptr's deleter pushes the chunk back into the pool when
/// the last aliasing payload dies, so steady-state traffic recycles a small
/// working set of buffers instead of churning the allocator.
std::shared_ptr<TcpNetwork::Chunk> TcpNetwork::acquire_chunk(Endpoint* ep,
                                                             size_t min_cap) {
  std::shared_ptr<ChunkPool> pool = ep->pool;
  std::unique_ptr<Chunk> chunk;
  {
    MutexLock lock(pool->mu);
    for (auto it = pool->free_list.rbegin(); it != pool->free_list.rend(); ++it) {
      if ((*it)->cap < min_cap) continue;
      chunk = std::move(*it);
      pool->bytes -= chunk->cap;
      pool->free_list.erase(std::next(it).base());
      break;
    }
  }
  if (!chunk) {
    chunk = std::make_unique<Chunk>(min_cap);
    ep->chunks_allocated.fetch_add(1, std::memory_order_relaxed);
  }
  chunk->filled = 0;
  return std::shared_ptr<Chunk>(chunk.release(), [pool](Chunk* c) {
    std::unique_ptr<Chunk> owned(c);
    MutexLock lock(pool->mu);
    if (pool->bytes + owned->cap <= pool->max_bytes) {
      pool->bytes += owned->cap;
      pool->free_list.push_back(std::move(owned));
    }
  });
}

/// Guarantees room to recv into the chunk with the pending partial frame
/// (if any) kept contiguous. Chunks still referenced by delivered payloads
/// are never reused; unreferenced ones are recycled in place.
bool TcpNetwork::ensure_recv_space(Endpoint* ep, ConnState& st) {
  const size_t default_cap = std::max(opts_.recv_chunk_bytes, kMinRecv);
  if (!st.chunk) {
    st.chunk = acquire_chunk(ep, default_cap);
    return true;
  }
  Chunk& c = *st.chunk;
  const size_t unparsed = c.filled - st.parse_pos;

  // How much contiguous room the data at parse_pos needs: the whole next
  // frame if its header is visible (parse_frames validated it), otherwise
  // just a minimum read window.
  size_t needed = unparsed + kMinRecv;
  if (unparsed >= 4) {
    const uint32_t frame_len = load_le32(c.data.get() + st.parse_pos);
    needed = std::max(needed, size_t{4} + frame_len);
  }
  if (c.cap - st.parse_pos >= needed && c.cap > c.filled) return true;

  if (unparsed == 0 && st.chunk.use_count() == 1) {
    // Nothing pending and no delivered view aliases us: recycle in place.
    c.filled = 0;
    st.parse_pos = 0;
    return true;
  }

  auto fresh = acquire_chunk(ep, std::max(default_cap, needed));
  if (unparsed > 0) {
    // The only copy on the receive path: a partial frame's tail carried
    // into the new chunk. Bounded by one chunk regardless of payload size
    // (tests assert this via TestHooks::recv_stats).
    std::memcpy(fresh->data.get(), c.data.get() + st.parse_pos, unparsed);
    ep->tail_bytes_copied.fetch_add(unparsed, std::memory_order_relaxed);
  }
  fresh->filled = unparsed;
  st.chunk = std::move(fresh);
  st.parse_pos = 0;
  return true;
}

/// Parses every complete frame at parse_pos, publishing envelopes whose
/// payloads alias the chunk straight into their delivery context. The
/// first authenticated frame on an accepted connection names the peer and
/// adopts the connection as the outbound route to it (full duplex).
/// Returns false to kill the connection (corrupt framing); forged MACs
/// only drop the frame.
bool TcpNetwork::parse_frames(Conn* conn) {
  Endpoint* ep = conn->ep;
  ConnState& st = conn->rd;
  Chunk& c = *st.chunk;
  for (;;) {
    const size_t avail = c.filled - st.parse_pos;
    if (avail < 4) return true;
    const uint8_t* base = c.data.get() + st.parse_pos;
    const uint32_t frame_len = load_le32(base);
    if (frame_len < kHeaderSize - 4 || frame_len > kMaxFrame) return false;
    if (avail < size_t{4} + frame_len) return true;  // incomplete

    Deserializer d(base + 4, kHeaderSize - 4);
    const ProcessId from = d.get_process_id();
    const ProcessId to = d.get_process_id();
    const uint64_t mac = d.get_u64();
    if (!d.ok() || !(to == ep->pid)) return false;  // misrouted or corrupt

    const BytesView payload(base + kHeaderSize, frame_len - (kHeaderSize - 4));
    st.parse_pos += size_t{4} + frame_len;

    if (!auth_.verify(from, to, payload, mac)) {
      metrics_.on_auth_failure();
      continue;  // drop the forged frame, keep the connection
    }
    if (!conn->peer_known) {
      // Adoption: this (MAC-authenticated) peer reaches us over this
      // connection, so our replies ride it back -- no dial-back, no second
      // socket, and listen-less clients stay reachable. An existing route
      // wins; we only fill a vacancy.
      conn->peer = from;
      conn->peer_known = true;
      MutexLock lock(ep->out_mu);
      OutQueue& q = ep->out[from];
      if (q.conn == nullptr) {
        q.conn = conn;
        q.conn_shard = conn->shard;
      }
    }
    metrics_.on_deliver();
    ep->payload_bytes_delivered.fetch_add(payload.size(),
                                          std::memory_order_relaxed);
    net::Envelope env;
    env.from = from;
    env.to = to;
    env.mac = mac;
    env.payload = Payload(st.chunk, payload);
    deliver(ep, std::move(env));
  }
}

// --- outbound --------------------------------------------------------------

void TcpNetwork::send_payload(const ProcessId& from, const ProcessId& to,
                              Payload payload) {
  if (!running_.load()) return;
  Endpoint* src = find(from);
  if (src == nullptr) return;

  // Seal the fixed-size header straight into the frame: no Serializer
  // buffer, no payload concatenation (flushes scatter-gather).
  OutFrame frame;
  uint8_t* h = frame.header.data();
  store_le32(h, static_cast<uint32_t>(kHeaderSize - 4 + payload.size()));
  h[4] = static_cast<uint8_t>(from.role);
  store_le32(h + 5, from.index);
  h[9] = static_cast<uint8_t>(to.role);
  store_le32(h + 10, to.index);
  store_le64(h + 14, auth_.seal(from, to, payload));

  metrics_.on_send(payload.size());
  frame.payload = std::move(payload);
  const size_t frame_bytes = kHeaderSize + frame.payload.size();

  bool need_post = false;
  size_t post_shard = 0;
  {
    MutexLock lock(src->out_mu);
    OutQueue& q = src->out[to];
    if (q.queued_bytes > 0 &&
        q.queued_bytes + frame_bytes > opts_.max_outbox_bytes) {
      metrics_.on_drop();  // bounded queue: shed instead of growing
      return;
    }
    q.queued_bytes += frame_bytes;
    q.pending.push_back(std::move(frame));
    if (!q.flush_scheduled) {
      q.flush_scheduled = true;
      need_post = true;
      post_shard = q.conn != nullptr ? q.conn_shard : src->home_shard;
    }
  }
  // Posting wakes the shard (eventfd write) -- never do it under out_mu.
  if (need_post) {
    loop_.shard(post_shard).post(
        [this, post_shard, src, to] { flush_task(post_shard, src, to); });
  }
}

void TcpNetwork::schedule_flush(Endpoint* ep, const ProcessId& to) {
  size_t shard = 0;
  {
    MutexLock lock(ep->out_mu);
    auto it = ep->out.find(to);
    if (it == ep->out.end() || it->second.queued_bytes == 0 ||
        it->second.flush_scheduled) {
      return;
    }
    it->second.flush_scheduled = true;
    shard = it->second.conn != nullptr ? it->second.conn_shard : ep->home_shard;
  }
  loop_.shard(shard).post([this, shard, ep, to] { flush_task(shard, ep, to); });
}

void TcpNetwork::flush_task(size_t shard, Endpoint* ep, ProcessId to) {
  Conn* c = nullptr;
  size_t chase = 0;
  bool chasing = false;
  {
    MutexLock lock(ep->out_mu);
    auto it = ep->out.find(to);
    if (it == ep->out.end()) return;
    OutQueue& q = it->second;
    q.flush_scheduled = false;
    if (q.conn != nullptr && q.conn_shard != shard) {
      // The route moved between post and run (an adoption raced us);
      // chase it to the owning shard.
      q.flush_scheduled = true;
      chasing = true;
      chase = q.conn_shard;
    } else {
      c = q.conn;
    }
  }
  if (chasing) {
    loop_.shard(chase).post([this, chase, ep, to] { flush_task(chase, ep, to); });
    return;
  }
  if (ep->writes_paused.load(std::memory_order_relaxed)) return;
  if (c == nullptr) {
    c = dial(shard, ep, to);
    if (c == nullptr) {
      // Destination unknown, listen-less, or immediately unreachable:
      // shed the backlog (client deadlines retransmit).
      MutexLock lock(ep->out_mu);
      OutQueue& q = ep->out[to];
      metrics_.on_drop_n(q.pending.size());
      q.pending.clear();
      q.queued_bytes = 0;
      q.failures = 0;
      return;
    }
  }
  if (c->connecting || c->want_write) {
    // Still connecting or backpressured: leave pending parked (and counted
    // against the outbox cap) so inflight stays bounded by one claimed
    // batch; the connect-completion / EPOLLOUT try_write claims it after
    // the socket drains.
    return;
  }
  {
    MutexLock lock(ep->out_mu);
    OutQueue& q = ep->out[to];
    if (q.conn != c) return;  // route moved; the adopter's flush handles it
    for (auto& f : q.pending) c->inflight.push_back(std::move(f));
    q.pending.clear();
    // Hand-off accounting: claimed frames leave the bounded outbox (they
    // are already "on the wire" as far as send-side shedding is concerned),
    // exactly like the old per-endpoint writer's batch grab.
    q.queued_bytes = 0;
  }
  try_write(c);  // refills from pending inline while the socket drains
}

TcpNetwork::Conn* TcpNetwork::dial(size_t shard, Endpoint* ep,
                                   const ProcessId& to) {
  Endpoint* dst = find(to);
  if (dst == nullptr || dst->port == 0) return nullptr;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return nullptr;
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ::inet_addr(config_.host);
  addr.sin_port = htons(dst->port);
  bool connecting = false;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return nullptr;
    }
    connecting = true;  // completion (or failure) arrives as EPOLLOUT/ERR
  }
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->shard = shard;
  conn->ep = ep;
  conn->peer = to;
  conn->peer_known = true;
  conn->connecting = connecting;
  conn->reading = !ep->reads_paused.load(std::memory_order_relaxed);
  Conn* raw = conn.get();
  {
    MutexLock lock(ep->out_mu);
    OutQueue& q = ep->out[to];
    q.conn = raw;
    q.conn_shard = shard;
  }
  register_conn(std::move(conn));
  return raw;
}

/// One sendmsg over the inflight queue starting at wr_offset, coalescing
/// up to kMaxIov iovecs. Pops fully transmitted frames (their sizes
/// accumulate into *sent_frame_bytes) and advances wr_offset into the new
/// front. Returns bytes written, 0 for try-again (EAGAIN/EINTR), -1 for a
/// dead connection.
ssize_t TcpNetwork::write_once(Conn* c, size_t* sent_frame_bytes) {
  iovec iov[kMaxIov];
  size_t niov = 0;
  size_t batch_bytes = 0;
  for (auto it = c->inflight.begin();
       it != c->inflight.end() && niov + 2 <= kMaxIov; ++it) {
    size_t off = (it == c->inflight.begin()) ? c->wr_offset : 0;
    if (off < kHeaderSize) {
      iov[niov].iov_base = it->header.data() + off;
      iov[niov].iov_len = kHeaderSize - off;
      batch_bytes += iov[niov].iov_len;
      ++niov;
      off = 0;
    } else {
      off -= kHeaderSize;
    }
    if (it->payload.size() > off) {
      // iovec's iov_base is non-const by design; sendmsg only reads.
      iov[niov].iov_base = const_cast<uint8_t*>(it->payload.data()) + off;
      iov[niov].iov_len = it->payload.size() - off;
      batch_bytes += iov[niov].iov_len;
      ++niov;
    }
  }
  msghdr mh{};
  mh.msg_iov = iov;
  mh.msg_iovlen = niov;
  const ssize_t w = ::sendmsg(c->fd, &mh, MSG_NOSIGNAL);
  if (w < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return 0;
    return -1;
  }
  if (static_cast<size_t>(w) < batch_bytes) {
    c->ep->partial_writes.fetch_add(1, std::memory_order_relaxed);
  }
  size_t advanced = c->wr_offset + static_cast<size_t>(w);
  while (!c->inflight.empty()) {
    const size_t flen = kHeaderSize + c->inflight.front().payload.size();
    if (advanced < flen) break;
    advanced -= flen;
    *sent_frame_bytes += flen;
    c->inflight.pop_front();
  }
  c->wr_offset = advanced;
  return w;
}

/// Drains the conn's inflight queue as far as the socket allows, claiming
/// further pending batches from the route's outbox while the socket stays
/// writable. A short write arms EPOLLOUT (the readiness wake resumes
/// exactly where wr_offset left off); a full drain disarms it. Returns
/// false when the conn died (conn_failed ran; `c` is gone -- callers must
/// return).
bool TcpNetwork::try_write(Conn* c) {
  if (c->connecting) {
    update_conn_events(c);
    return true;
  }
  if (c->ep->writes_paused.load(std::memory_order_relaxed)) return true;
  size_t sent = 0;
  bool progress = false;
  bool dead = false;
  for (;;) {
    while (!c->inflight.empty()) {
      const ssize_t w = write_once(c, &sent);
      if (w > 0) {
        progress = true;
        continue;
      }
      if (w == 0) {
        if (!c->want_write) {
          c->want_write = true;
          c->ep->epollout_arms.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      dead = true;
      break;
    }
    if (dead || !c->inflight.empty() || !c->peer_known) break;
    // Socket fully drained: claim the next pending batch and keep writing.
    // Under ping-pong load the reply lands in pending during the sendmsg
    // above, and pulling it here saves a post()+wake round trip per frame;
    // after an EPOLLOUT resume it picks up what queued behind the stall.
    MutexLock lock(c->ep->out_mu);
    auto it = c->ep->out.find(c->peer);
    if (it == c->ep->out.end()) break;
    OutQueue& q = it->second;
    if (q.pending.empty() || q.conn != c) break;
    for (auto& f : q.pending) c->inflight.push_back(std::move(f));
    q.pending.clear();
    q.queued_bytes = 0;  // hand-off accounting, as in flush_task
  }
  if (!dead && c->inflight.empty()) c->want_write = false;
  if (c->peer_known && (sent > 0 || progress)) {
    // Progress resets the reconnect budget.
    MutexLock lock(c->ep->out_mu);
    auto it = c->ep->out.find(c->peer);
    if (it != c->ep->out.end()) it->second.failures = 0;
  }
  if (dead) {
    conn_failed(c);
    return false;
  }
  update_conn_events(c);
  return true;
}

void TcpNetwork::conn_failed(Conn* c) {
  const size_t shard = c->shard;
  const int fd = c->fd;
  loop_.shard(shard).del_fd(fd);

  Endpoint* ep = c->ep;
  bool redial = false;
  if (c->peer_known) {
    const ProcessId peer = c->peer;
    MutexLock lock(ep->out_mu);
    OutQueue& q = ep->out[peer];
    if (q.conn == c) q.conn = nullptr;
    const bool backlog = !c->inflight.empty() || !q.pending.empty();
    if (backlog) {
      q.failures++;
      if (q.failures <= 1) {
        // One reconnect attempt: requeue (inflight ahead of pending; a
        // partially transmitted front frame is resent whole on the fresh
        // stream) and redial from the home shard.
        for (auto it = c->inflight.rbegin(); it != c->inflight.rend(); ++it) {
          // Requeued frames re-enter the bounded outbox: restore the bytes
          // their claim removed so the cap sees the true backlog.
          q.queued_bytes += kHeaderSize + it->payload.size();
          q.pending.push_front(std::move(*it));
        }
        c->inflight.clear();
        if (!q.flush_scheduled) {
          q.flush_scheduled = true;
          redial = true;
        }
      } else {
        // Repeated failure without progress: shed the backlog (TCP gives
        // reliable FIFO while up; process failure is a crash in the model,
        // and client deadlines retransmit). Reset so the next send starts
        // a fresh connect cycle.
        metrics_.on_drop_n(c->inflight.size() + q.pending.size());
        c->inflight.clear();
        q.pending.clear();
        q.queued_bytes = 0;
        q.failures = 0;
      }
    }
  }
  const ProcessId peer = c->peer;
  shard_conns_[shard].erase(fd);  // destroys c
  ::close(fd);
  if (redial) {
    const size_t home = ep->home_shard;
    loop_.shard(home).post([this, home, ep, peer] { flush_task(home, ep, peer); });
  }
}

/// stop()-time rundown for one shard: adopt any frames still parked in the
/// queues its conns serve, then wait boundedly for writability and push.
/// What will not drain inside the budget is shed and counted.
void TcpNetwork::drain_shard(size_t shard) {
  using clock = std::chrono::steady_clock;
  for (auto& [fd, cptr] : shard_conns_[shard]) {
    Conn* c = cptr.get();
    if (c->peer_known) {
      MutexLock lock(c->ep->out_mu);
      auto it = c->ep->out.find(c->peer);
      if (it != c->ep->out.end() && it->second.conn == c) {
        for (auto& f : it->second.pending) c->inflight.push_back(std::move(f));
        it->second.pending.clear();
        it->second.queued_bytes = 0;
      }
    }
    const auto deadline = clock::now() + std::chrono::milliseconds(kDrainMs);
    size_t sent = 0;
    while (!c->inflight.empty()) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - clock::now())
                            .count();
      if (left <= 0) break;
      pollfd p{};
      p.fd = c->fd;
      p.events = POLLOUT;
      if (::poll(&p, 1, static_cast<int>(left)) <= 0) break;
      if (c->connecting) {  // POLLOUT doubles as connect completion
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(c->fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) break;
        c->connecting = false;
      }
      if (write_once(c, &sent) < 0) break;
    }
    if (!c->inflight.empty()) metrics_.on_drop_n(c->inflight.size());
  }
}

// --- timers / posting ------------------------------------------------------

void TcpNetwork::post(const ProcessId& pid, std::function<void()> fn) {
  if (Endpoint* ep = find(pid)) enqueue(ep, std::move(fn));
}

void TcpNetwork::post_after(const ProcessId& pid, TimeNs delta,
                            std::function<void()> fn) {
  if (delta == 0) {
    post(pid, std::move(fn));
    return;
  }
  Endpoint* ep = find(pid);
  if (ep == nullptr) return;
  // Timers live on the endpoint's home shard (absorbing the old dedicated
  // timer thread); pending timers are dropped at stop() by the LoopShard
  // contract, matching the Transport interface.
  loop_.shard(ep->home_shard)
      .run_after(delta, [this, ep, fn = std::move(fn)]() mutable {
        enqueue(ep, std::move(fn));
      });
}

// --- TestHooks -------------------------------------------------------------

TcpNetwork::TestHooks::RecvStats TcpNetwork::TestHooks::recv_stats(
    const ProcessId& pid) const {
  RecvStats out;
  if (const Endpoint* ep = net_.find(pid)) {
    out.chunks_allocated = ep->chunks_allocated.load(std::memory_order_relaxed);
    out.tail_bytes_copied = ep->tail_bytes_copied.load(std::memory_order_relaxed);
    out.payload_bytes_delivered =
        ep->payload_bytes_delivered.load(std::memory_order_relaxed);
  }
  return out;
}

TcpNetwork::TestHooks::SendStats TcpNetwork::TestHooks::send_stats(
    const ProcessId& pid) const {
  SendStats out;
  if (const Endpoint* ep = net_.find(pid)) {
    out.epollout_arms = ep->epollout_arms.load(std::memory_order_relaxed);
    out.epollout_wakes = ep->epollout_wakes.load(std::memory_order_relaxed);
    out.partial_writes = ep->partial_writes.load(std::memory_order_relaxed);
  }
  return out;
}

size_t TcpNetwork::TestHooks::outbox_bytes(const ProcessId& from,
                                           const ProcessId& to) const {
  Endpoint* ep = net_.find(from);
  if (ep == nullptr) return 0;
  MutexLock lock(ep->out_mu);
  auto it = ep->out.find(to);
  return it == ep->out.end() ? 0 : it->second.queued_bytes;
}

size_t TcpNetwork::TestHooks::loop_shard_of(const ProcessId& pid) const {
  return net_.loop_.shard_of(pid);
}

void TcpNetwork::TestHooks::shutdown_inbound(const ProcessId& pid) {
  Endpoint* ep = net_.find(pid);
  if (ep == nullptr) return;
  // shutdown(2), not close: the owning shard reaps the fd on the EOF this
  // provokes, so ownership never crosses threads. (Capture the network,
  // not `this` -- TestHooks is a by-value view and may be gone by the time
  // the task runs.)
  TcpNetwork* net = &net_;
  for (size_t s = 0; s < net->loop_.size(); ++s) {
    net->loop_.shard(s).post([net, s, ep] {
      for (auto& [fd, c] : net->shard_conns_[s]) {
        if (c->ep == ep && c->inbound) ::shutdown(fd, SHUT_RDWR);
      }
    });
  }
}

void TcpNetwork::TestHooks::pause_writes(const ProcessId& pid, bool paused) {
  Endpoint* ep = net_.find(pid);
  if (ep == nullptr) return;
  ep->writes_paused.store(paused, std::memory_order_relaxed);
  if (paused) return;
  // Resume: everything that accumulated while paused needs a flush.
  std::vector<ProcessId> dests;
  {
    MutexLock lock(ep->out_mu);
    for (const auto& [to, q] : ep->out) {
      if (q.queued_bytes > 0) dests.push_back(to);
    }
  }
  for (const ProcessId& to : dests) net_.schedule_flush(ep, to);
  // Frames claimed before the pause landed sit in conn inflight queues, not
  // in the outbox, so the scan above misses them: kick every conn of this
  // endpoint that still holds inflight work.
  TcpNetwork* net = &net_;
  for (size_t s = 0; s < net->loop_.size(); ++s) {
    net->loop_.shard(s).post([net, s, ep] {
      std::vector<int> fds;
      for (auto& [fd, c] : net->shard_conns_[s]) {
        if (c->ep == ep && !c->inflight.empty()) fds.push_back(fd);
      }
      for (int fd : fds) {  // try_write may erase the conn; re-find each
        auto it = net->shard_conns_[s].find(fd);
        if (it != net->shard_conns_[s].end()) net->try_write(it->second.get());
      }
    });
  }
}

void TcpNetwork::TestHooks::pause_reads(const ProcessId& pid, bool paused) {
  Endpoint* ep = net_.find(pid);
  if (ep == nullptr) return;
  ep->reads_paused.store(paused, std::memory_order_relaxed);
  // Re-arm (or disarm) EPOLLIN on every conn delivering to this endpoint;
  // level-triggered epoll replays anything that queued while paused.
  TcpNetwork* net = &net_;
  for (size_t s = 0; s < net->loop_.size(); ++s) {
    net->loop_.shard(s).post([net, s, ep, paused] {
      for (auto& [fd, c] : net->shard_conns_[s]) {
        if (c->ep != ep) continue;
        c->reading = !paused;
        net->update_conn_events(c.get());
      }
    });
  }
}

}  // namespace bftreg::socknet
