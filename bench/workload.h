// YCSB-style operation mixes over a large key space (Cooper et al.,
// "Benchmarking cloud serving systems with YCSB", SoCC'10).
//
// src/workload owns the primitives (make_value, ZipfianKeys, the paper's
// TAO read ratio); this bench-side layer composes them into the standard
// YCSB core mixes so every storage/transport bench names its workload the
// same way:
//
//   A  update-heavy   50% read / 50% update
//   B  read-heavy     95% read /  5% update
//   C  read-only     100% read
//   F  read-modify-write  50% read / 50% RMW
//
// Keys come from either the YCSB-default zipfian (theta 0.99, rank
// scrambled with fnv1a64 so the hot set is scattered across the id space,
// as YCSB's ScrambledZipfian does) or a uniform distribution. Streams are
// deterministic per seed.
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.h"
#include "workload/workload.h"

namespace bftreg::bench {

enum class YcsbOpKind : uint8_t { kRead, kUpdate, kReadModifyWrite };

struct YcsbOp {
  YcsbOpKind kind;
  uint64_t key;
};

enum class KeyDist : uint8_t { kZipfian, kUniform };

const char* to_string(KeyDist dist);

/// An operation mix; fractions must sum to 1.
struct YcsbMix {
  const char* name;
  double read;
  double update;
  double rmw;
};

inline constexpr YcsbMix kYcsbA{"ycsb_a", 0.50, 0.50, 0.0};
inline constexpr YcsbMix kYcsbB{"ycsb_b", 0.95, 0.05, 0.0};
inline constexpr YcsbMix kYcsbC{"ycsb_c", 1.00, 0.00, 0.0};
inline constexpr YcsbMix kYcsbF{"ycsb_f", 0.50, 0.00, 0.5};

/// Deterministic stream of YCSB operations over keys [0, keys).
class YcsbWorkload {
 public:
  YcsbWorkload(const YcsbMix& mix, KeyDist dist, uint64_t keys, uint64_t seed,
               double theta = 0.99);

  YcsbOp next();

  const YcsbMix& mix() const { return mix_; }
  KeyDist dist() const { return dist_; }
  uint64_t keys() const { return keys_; }

 private:
  uint64_t next_key();

  YcsbMix mix_;
  KeyDist dist_;
  uint64_t keys_;
  Rng rng_;
  /// Engaged only for kZipfian (ZipfianKeys has no trivial state).
  std::optional<workload::ZipfianKeys> zipf_;
};

}  // namespace bftreg::bench
