// Minimal leveled logging to stderr.
//
// Logging is off by default (kWarn) so that deterministic tests and benches
// stay quiet; set `set_log_level(LogLevel::kDebug)` or the BFTREG_LOG env
// var to trace protocol message flow.
//
// Thread-safety: log_line (and therefore the LOG_* macros) may be called
// from any thread; lines are serialized by an internal mutex so output
// never interleaves. The level is a relaxed atomic -- set_log_level takes
// effect promptly but is not a synchronization point. init_log_from_env is
// not thread-safe against concurrent set_log_level; call it once at startup.
#pragma once

#include <sstream>
#include <string>

namespace bftreg {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

LogLevel log_level();
void set_log_level(LogLevel level);

/// Initialize from the BFTREG_LOG environment variable (debug|info|warn|error|off).
void init_log_from_env();

void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace bftreg

#define BFTREG_LOG(level)                            \
  if (::bftreg::log_level() <= ::bftreg::LogLevel::level) \
  ::bftreg::detail::LogMessage(::bftreg::LogLevel::level)

#define LOG_DEBUG BFTREG_LOG(kDebug)
#define LOG_INFO BFTREG_LOG(kInfo)
#define LOG_WARN BFTREG_LOG(kWarn)
#define LOG_ERROR BFTREG_LOG(kError)
