// Bounded lock-free multi-producer single-consumer ring.
//
// The control-plane mailbox behind the threaded transports: producers are
// sender/reader threads publishing mail items, the consumer is the one
// handler thread that owns a delivery shard. Layout and protocol follow
// Vyukov's bounded MPMC queue, specialized to a single consumer:
//
//   * every slot carries its own sequence counter, cache-line padded so a
//     producer completing slot i never invalidates the line a different
//     producer is claiming or the consumer is draining;
//   * producers claim a position with a CAS on `head_` and *publish* the
//     slot by storing `pos + 1` into its sequence with release order -- the
//     consumer's acquire load of the same counter is the only
//     synchronization edge a delivery needs;
//   * the single consumer owns `tail_` outright (plain member, no atomics),
//     consumes a slot, and recycles it by storing `tail + capacity` with
//     release order so the producer that wraps around acquires the
//     consumer's read as completed.
//
// Memory-order discipline (checked by the `atomic-in-ring` lint rule):
// every atomic access names its order explicitly. The ring itself never
// needs seq_cst; the idle/wake handshake that does lives in
// runtime/mailbox.h where the reasoning is written down.
//
// A full ring fails `try_push` rather than blocking or overwriting --
// callers that carry reliable-channel semantics (the transports) spill to
// an overflow queue instead of dropping.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace bftreg::common {

template <typename T>
class MpscRing {
 public:
  /// `capacity` must be a power of two (asserted); it bounds the number of
  /// in-flight items before producers start failing try_push.
  explicit MpscRing(size_t capacity)
      : mask_(capacity - 1), slots_(new Slot[capacity]) {
    assert(capacity >= 2 && (capacity & (capacity - 1)) == 0 &&
           "MpscRing capacity must be a power of two");
    for (size_t i = 0; i < capacity; ++i) {
      slots_[i].seq.store(static_cast<uint64_t>(i), std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  size_t capacity() const { return mask_ + 1; }

  /// Producer side; any thread. Returns false when the ring is full --
  /// the item is left untouched so the caller can divert it elsewhere.
  bool try_push(T& item) {
    uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (dif == 0) {
        // Slot is free at exactly our position; claim it. Failure just
        // reloads `pos` with the value the winner advanced to.
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
          slot.value = std::move(item);
          slot.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        // The consumer has not recycled this slot yet: a full lap is in
        // flight ahead of us.
        return false;
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  bool try_push(T&& item) { return try_push(item); }

  /// Consumer side; single thread only. Appends up to `max` published
  /// items to `out` in ring order and recycles their slots. Returns the
  /// number drained (0 when the ring is empty).
  size_t pop_batch(std::vector<T>& out, size_t max) {
    size_t drained = 0;
    while (drained < max) {
      Slot& slot = slots_[tail_ & mask_];
      const uint64_t seq = slot.seq.load(std::memory_order_acquire);
      if (static_cast<int64_t>(seq) - static_cast<int64_t>(tail_ + 1) < 0) {
        break;  // next slot not published yet
      }
      out.push_back(std::move(slot.value));
      slot.value = T{};  // drop payload refs now, not a full lap later
      slot.seq.store(tail_ + mask_ + 1, std::memory_order_release);
      ++tail_;
      ++drained;
    }
    return drained;
  }

  /// Consumer side; single thread only. Like pop_batch but invokes
  /// `fn(item)` on each published item in place instead of moving it into
  /// a vector first -- one 100+-byte move less per delivery on the mailbox
  /// hot path. The slot is recycled after fn returns; fn may push into
  /// this or any other ring (including from nested handlers).
  template <typename Fn>
  size_t consume_batch(Fn&& fn, size_t max) {
    size_t drained = 0;
    while (drained < max) {
      Slot& slot = slots_[tail_ & mask_];
      const uint64_t seq = slot.seq.load(std::memory_order_acquire);
      if (static_cast<int64_t>(seq) - static_cast<int64_t>(tail_ + 1) < 0) {
        break;
      }
      fn(slot.value);
      slot.value = T{};  // drop payload refs now, not a full lap later
      slot.seq.store(tail_ + mask_ + 1, std::memory_order_release);
      ++tail_;
      ++drained;
    }
    return drained;
  }

  /// Consumer side; single thread only. True when the next slot in ring
  /// order has no published item. Pair with a seq_cst fence when used in a
  /// sleep/wake handshake (see runtime/mailbox.h).
  bool empty() const {
    const uint64_t seq =
        slots_[tail_ & mask_].seq.load(std::memory_order_acquire);
    return static_cast<int64_t>(seq) - static_cast<int64_t>(tail_ + 1) < 0;
  }

 private:
  // One cache line per slot: the seq counter ping-pongs between the
  // publishing producer and the consumer; padding keeps neighbouring slots
  // (and the head/tail counters below) out of that traffic.
  struct alignas(64) Slot {
    std::atomic<uint64_t> seq{0};
    T value{};
  };

  alignas(64) std::atomic<uint64_t> head_{0};  // producers: next claim
  alignas(64) uint64_t tail_{0};               // consumer-owned
  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace bftreg::common
