// E3 -- mixed read/write workloads (paper claim: Section I + footnote 1,
// "read requests form around 99.8% of all operations", so making reads
// cheaper than writes is the right trade).
//
// Closed-loop clients (each issues its next op when the previous completes)
// run mixes from write-heavy to the TAO mix over each protocol; we report
// virtual-time throughput and mean operation latency. Expected shape: the
// semi-fast protocols' advantage over both the two-round variant and the RB
// baseline grows with the read ratio, and is largest at 99.8% reads.
//
// Pipelined mode (always printed; `--json=PATH` additionally writes the
// bftreg-bench-client-v1 snapshot consumed by tools/bench_regress against
// the checked-in BENCH_client.json): ONE RegisterClient keeps an in-flight
// window of 1 / 8 / 64 operations over 8 objects. Per-operation latency is
// delay-bound and constant, so throughput should scale almost linearly
// with the window -- the measured speedup of depth 64 over depth 1 is the
// operation multiplexer's headline number.
#include <cstring>
#include <fstream>
#include <functional>

#include "bench_util.h"
#include "registers/registers.h"
#include "sim/simulator.h"

using namespace bftreg;
using namespace bftreg::bench;

namespace {

struct MixResult {
  double ops_per_ms{0};
  double mean_read_us{0};
  double mean_write_us{0};
};

MixResult run_mix(harness::Protocol protocol, size_t f, double read_ratio,
                  size_t total_ops, uint64_t seed) {
  const size_t n = harness::min_servers(protocol, f);
  auto options = make_options(protocol, n, f, seed, 500, 1500);
  options.num_writers = 2;
  options.num_readers = 2;
  harness::SimCluster cluster(options);

  workload::WorkloadOptions wo;
  wo.read_ratio = read_ratio;
  wo.num_ops = total_ops;
  wo.value_size = 64;
  wo.seed = seed;
  workload::WorkloadGenerator gen(wo);

  // Four closed-loop clients (2 writers, 2 readers); reads and writes are
  // drawn from the mix and dispatched to an idle client of the right kind.
  std::vector<std::optional<uint64_t>> wop(2), rop(2);
  Samples read_lat, write_lat;
  const TimeNs start = cluster.sim().now();

  auto reap = [&](std::vector<std::optional<uint64_t>>& slots, Samples& lat,
                  bool is_read) {
    for (auto& s : slots) {
      if (s && cluster.op_done(*s)) {
        if (is_read) {
          const auto& r = cluster.read_result(*s);
          lat.add(static_cast<double>(r.completed_at - r.invoked_at));
        } else {
          const auto& w = cluster.write_result(*s);
          lat.add(static_cast<double>(w.completed_at - w.invoked_at));
        }
        s.reset();
      }
    }
  };

  std::optional<workload::Op> queued;
  while (!gen.done() || queued) {
    reap(wop, write_lat, false);
    reap(rop, read_lat, true);
    if (!queued && !gen.done()) queued = gen.next();
    if (queued) {
      auto& slots = queued->is_read ? rop : wop;
      for (size_t c = 0; c < slots.size() && queued; ++c) {
        if (!slots[c]) {
          if (queued->is_read) {
            slots[c] = cluster.start_read(c);
          } else {
            slots[c] = cluster.start_write(c, std::move(queued->value));
          }
          queued.reset();
        }
      }
    }
    if (!cluster.sim().step()) break;  // drive one event at a time
  }
  for (auto& s : wop) {
    if (s) cluster.await(*s);
  }
  for (auto& s : rop) {
    if (s) cluster.await(*s);
  }
  reap(wop, write_lat, false);
  reap(rop, read_lat, true);

  MixResult out;
  const double elapsed_ms =
      static_cast<double>(cluster.sim().now() - start) / 1'000'000.0;
  out.ops_per_ms = elapsed_ms > 0 ? static_cast<double>(total_ops) / elapsed_ms : 0;
  out.mean_read_us = read_lat.mean() / 1000.0;
  out.mean_write_us = write_lat.mean() / 1000.0;
  return out;
}

struct PipelinedResult {
  double ops_per_ms{0};
  double mean_op_us{0};
};

/// One RegisterClient holding `depth` operations in flight (closed loop:
/// every completion immediately issues the next op) against 5 BSR servers,
/// 90% reads, round-robin over 8 objects.
PipelinedResult run_pipelined(size_t depth, size_t total_ops, uint64_t seed) {
  const auto config =
      registers::SystemConfig::builder().n(5).f(1).build_for_bsr().value();
  sim::Simulator sim(sim::SimConfig::with_uniform_delay(seed, 500, 1500));
  std::vector<std::unique_ptr<registers::RegisterServer>> servers;
  for (uint32_t i = 0; i < config.n; ++i) {
    servers.push_back(std::make_unique<registers::RegisterServer>(
        ProcessId::server(i), config, &sim, Bytes{}));
    sim.add_process(ProcessId::server(i), servers.back().get());
  }
  registers::RegisterClient client(ProcessId::writer(0), config, &sim);
  sim.add_process(client.id(), &client);
  sim.start_all();

  constexpr uint32_t kObjects = 8;
  size_t issued = 0;
  size_t completed = 0;
  Samples latency;
  TimeNs start = 0;

  // Issues the next op of the mix; runs in the client's context, both for
  // the initial window and from completion callbacks.
  std::function<void()> issue_next = [&] {
    if (issued >= total_ops) return;
    const size_t i = issued++;
    const uint32_t object = static_cast<uint32_t>(i) % kObjects;
    if (i % 10 == 0) {
      client.write(object, workload::make_value(seed, i, 64),
                   [&](const registers::WriteResult& w) {
                     latency.add(static_cast<double>(w.completed_at - w.invoked_at));
                     ++completed;
                     issue_next();
                   });
    } else {
      client.read(object, [&](const registers::ReadResult& r) {
        latency.add(static_cast<double>(r.completed_at - r.invoked_at));
        ++completed;
        issue_next();
      });
    }
  };
  sim.post(client.id(), [&] {
    start = sim.now();
    for (size_t k = 0; k < depth; ++k) issue_next();
  });
  sim.run_until([&] { return completed == total_ops; });

  PipelinedResult out;
  const double elapsed_ms = static_cast<double>(sim.now() - start) / 1'000'000.0;
  out.ops_per_ms =
      elapsed_ms > 0 ? static_cast<double>(total_ops) / elapsed_ms : 0;
  out.mean_op_us = latency.mean() / 1000.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  std::printf("E3: mixed workloads (closed loop, 2 writers + 2 readers)\n");
  std::printf("1000 ops per cell, uniform delay 500-1500 ns, f = 1\n\n");

  const double ratios[] = {0.5, 0.9, 0.998};
  const harness::Protocol protocols[] = {
      harness::Protocol::kBsr, harness::Protocol::kBsrHistory,
      harness::Protocol::kBsr2R, harness::Protocol::kBcsr, harness::Protocol::kRb};

  TextTable table({"protocol", "read ratio", "ops/ms (virtual)", "mean read (us)",
                   "mean write (us)"});
  for (const auto protocol : protocols) {
    for (const double ratio : ratios) {
      const auto res = run_mix(protocol, 1, ratio, 1000, 7);
      table.add_row({to_string(protocol), TextTable::fmt(ratio, 3),
                     TextTable::fmt(res.ops_per_ms, 2),
                     TextTable::fmt(res.mean_read_us, 2),
                     TextTable::fmt(res.mean_write_us, 2)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape check: at 99.8%% reads, throughput tracks read cost almost\n"
      "exclusively -- the one-shot protocols (BSR, history, BCSR) beat the\n"
      "two-round reader, and the baseline's RB write tax stops mattering\n"
      "while its read path still lags under write interference.\n\n");

  // --- pipelined client: ops/sec vs in-flight depth ------------------------
  std::printf(
      "pipelined client (ONE RegisterClient, BSR n=5 f=1, 90%% reads,\n"
      "8 objects, 2000 ops, closed-loop window of `depth` operations)\n\n");
  const size_t depths[] = {1, 8, 64};
  PipelinedResult results[3];
  TextTable ptable({"depth", "ops/ms (virtual)", "mean op (us)", "speedup vs 1"});
  for (size_t d = 0; d < 3; ++d) {
    results[d] = run_pipelined(depths[d], 2000, 7);
    ptable.add_row({std::to_string(depths[d]),
                    TextTable::fmt(results[d].ops_per_ms, 2),
                    TextTable::fmt(results[d].mean_op_us, 2),
                    TextTable::fmt(results[d].ops_per_ms / results[0].ops_per_ms, 2)});
  }
  std::printf("%s\n", ptable.render().c_str());
  std::printf(
      "shape check: per-op latency is delay-bound and does not grow with\n"
      "the window, so throughput scales with depth -- the multiplexer keeps\n"
      "64 quorums counting concurrently on one client.\n");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << "{\n  \"schema\": \"bftreg-bench-client-v1\",\n  \"results\": [\n";
    for (size_t d = 0; d < 3; ++d) {
      char line[256];
      std::snprintf(line, sizeof(line),
                    "    {\"protocol\": \"bsr\", \"depth\": %zu, "
                    "\"ops_per_ms\": %.2f, \"mean_op_us\": %.2f, "
                    "\"speedup_vs_depth1\": %.2f}%s\n",
                    depths[d], results[d].ops_per_ms, results[d].mean_op_us,
                    results[d].ops_per_ms / results[0].ops_per_ms,
                    d + 1 < 3 ? "," : "");
      out << line;
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
