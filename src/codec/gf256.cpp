#include "codec/gf256.h"

#include <cassert>

namespace bftreg::codec::gf {

namespace {

constexpr unsigned kPrimitivePoly = 0x11D;

struct Tables {
  uint8_t exp[512];  // doubled so mul can skip a modulo
  uint8_t log[256];

  Tables() {
    unsigned x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      exp[i] = static_cast<uint8_t>(x);
      log[x] = static_cast<uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= kPrimitivePoly;
    }
    for (unsigned i = 255; i < 512; ++i) exp[i] = exp[i - 255];
    log[0] = 0;  // never consulted; mul/div guard zero operands
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

uint8_t mul(uint8_t a, uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp[t.log[a] + t.log[b]];
}

uint8_t inv(uint8_t a) {
  assert(a != 0 && "inverse of zero");
  const Tables& t = tables();
  return t.exp[255 - t.log[a]];
}

uint8_t div(uint8_t a, uint8_t b) {
  assert(b != 0 && "division by zero");
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp[t.log[a] + 255 - t.log[b]];
}

uint8_t pow(uint8_t a, unsigned power) {
  if (power == 0) return 1;
  if (a == 0) return 0;
  const Tables& t = tables();
  const unsigned l = (static_cast<unsigned>(t.log[a]) * power) % 255;
  return t.exp[l];
}

uint8_t exp_table(unsigned i) { return tables().exp[i % 255]; }

uint8_t log_table(uint8_t a) {
  assert(a != 0);
  return tables().log[a];
}

}  // namespace bftreg::codec::gf
