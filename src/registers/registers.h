// Umbrella header: the public API of the register library.
//
// Two layers:
//
//   High-level (start here): RegisterClient (client.h) -- one client
//     object per process, constructed from a SystemConfig (see
//     SystemConfig::Builder) plus a ProtocolVariant, offering
//     read/write/read_batch over any number of objects with any number of
//     operations in flight, deadline-based timeouts and capped retries.
//     BlockingRegisterClient wraps it future-style for the real-time
//     transports.
//
//   Low-level (the paper's one-operation-per-client state machines, kept
//     for the protocol tests, benches, and anyone wanting the figures
//     verbatim; they run the same protocol ops through the same
//     multiplexer, restricted to one operation at a time):
//   BsrWriter/BsrReader + RegisterServer  -- MWMR replicated safe register,
//     one-shot reads, n >= 4f+1 (Section III).
//   BcsrWriter/BcsrReader + RegisterServer -- SWMR erasure-coded safe
//     register, one-shot reads, n >= 5f+1 (Section IV).
//   HistoryReader   -- one-shot *regular* reads via full-history responses
//     (Section III-C, option 1).
//   TwoRoundReader  -- two-round regular reads (Section III-C, option 2).
//   RbWriter/RbReader + RbServer -- RB-based baseline, n >= 3f+1
//     (comparator; Section VI / [15]).
//   WriteBackReader -- extension: ABD-style write-back upgrades BSR reads
//     to atomicity at the cost of a second round (consistent with the
//     semi-fast atomicity impossibility of [13]).
//   BatchReader -- extension: one-shot multi-get over many objects.
#pragma once

#include "registers/batch_reader.h"    // IWYU pragma: export
#include "registers/bcsr.h"            // IWYU pragma: export
#include "registers/bsr_reader.h"      // IWYU pragma: export
#include "registers/bsr_writer.h"      // IWYU pragma: export
#include "registers/client.h"          // IWYU pragma: export
#include "registers/config.h"          // IWYU pragma: export
#include "registers/history_reader.h"  // IWYU pragma: export
#include "registers/messages.h"        // IWYU pragma: export
#include "registers/op_mux.h"          // IWYU pragma: export
#include "registers/protocol_ops.h"    // IWYU pragma: export
#include "registers/rb_register.h"     // IWYU pragma: export
#include "registers/results.h"         // IWYU pragma: export
#include "registers/server.h"          // IWYU pragma: export
#include "registers/two_round_reader.h"  // IWYU pragma: export
#include "registers/writeback_reader.h"  // IWYU pragma: export
