// Core identifier and value types shared by every module.
//
// The paper's model (Section II-A) has three kinds of asynchronous
// processes -- servers, writers and readers -- each with a unique ID drawn
// from a totally ordered set. `ProcessId` realizes that set: ordering is
// lexicographic on (role, index), which is total and agreed on by all
// processes, exactly what the write tie-break in Lemma 2 requires.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace bftreg {

/// Raw byte string; register values and wire payloads are both byte vectors.
using Bytes = std::vector<uint8_t>;

/// Non-owning view over bytes (string_view analogue). Used by the zero-copy
/// deserialization path; valid only while the underlying buffer lives.
using BytesView = std::span<const uint8_t>;

/// Virtual (simulator) or wall-clock time in nanoseconds.
using TimeNs = uint64_t;

/// The role of a process in the emulation (Section II-A).
enum class Role : uint8_t {
  kServer = 0,
  kWriter = 1,
  kReader = 2,
};

const char* to_string(Role role);

/// Unique, totally ordered process identifier.
struct ProcessId {
  Role role{Role::kServer};
  uint32_t index{0};

  friend auto operator<=>(const ProcessId&, const ProcessId&) = default;

  static constexpr ProcessId server(uint32_t i) {
    return ProcessId{Role::kServer, i};
  }
  static constexpr ProcessId writer(uint32_t i) {
    return ProcessId{Role::kWriter, i};
  }
  static constexpr ProcessId reader(uint32_t i) {
    return ProcessId{Role::kReader, i};
  }

  bool is_server() const { return role == Role::kServer; }
  bool is_client() const { return role != Role::kServer; }
};

std::string to_string(const ProcessId& id);

/// Write tag: (sequence number, writer id), ordered lexicographically
/// (Section III-A). Ties between concurrent writes that picked the same
/// number are broken by the total order on writer IDs (Lemma 2, Case 2).
struct Tag {
  uint64_t num{0};
  ProcessId writer{};

  friend auto operator<=>(const Tag&, const Tag&) = default;

  /// The distinguished initial tag t0 associated with v0.
  static constexpr Tag initial() { return Tag{}; }

  bool is_initial() const { return num == 0; }
};

std::string to_string(const Tag& tag);

/// 64-bit FNV-1a over arbitrary bytes; used for hashing ids and dedup keys.
uint64_t fnv1a64(const void* data, size_t len, uint64_t seed = 0xcbf29ce484222325ULL);

}  // namespace bftreg

namespace std {

template <>
struct hash<bftreg::ProcessId> {
  size_t operator()(const bftreg::ProcessId& id) const noexcept {
    return (static_cast<size_t>(id.role) << 32) ^ id.index;
  }
};

template <>
struct hash<bftreg::Tag> {
  size_t operator()(const bftreg::Tag& t) const noexcept {
    size_t h = std::hash<bftreg::ProcessId>{}(t.writer);
    return h ^ (t.num + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  }
};

}  // namespace std
