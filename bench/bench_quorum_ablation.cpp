// Ablation -- why the paper's two magic numbers are what they are:
//   (a) the reader's witness threshold f+1 (Fig. 2 line 5 / Lemma 5), and
//   (b) the writer's rank-(f+1) tag selection (Fig. 1 line 4).
//
// Each knob is swept below/at its paper value against the adversary that
// punishes it: fabricating servers for (a) (a lone liar gets adopted at
// threshold <= f), and tag-inflating servers for (b) (rank < f+1 lets f
// liars blow tags up without any real write). Expected shape: safety
// violations and unbounded tag growth below the paper values; clean runs
// at them.
#include "bench_util.h"
#include "checker/consistency.h"

using namespace bftreg;
using namespace bftreg::bench;

namespace {

struct AblationResult {
  double violations_pct{0};
  uint64_t final_tag_num{0};
};

AblationResult run_witness_ablation(size_t threshold, size_t trials) {
  size_t violations = 0;
  for (uint64_t seed = 1; seed <= trials; ++seed) {
    harness::ClusterOptions o =
        make_options(harness::Protocol::kBsr, 5, 1, seed, 500, 1500);
    o.config.witness_threshold_override = threshold;
    o.num_writers = 1;
    o.num_readers = 1;
    harness::SimCluster cluster(o);
    Rng rng(seed);
    cluster.set_byzantine(rng.uniform(5), adversary::StrategyKind::kFabricate);
    for (int i = 0; i < 5; ++i) {
      cluster.write(0, workload::make_value(seed, i, 24));
      cluster.read(0);
    }
    checker::CheckOptions copts;
    copts.strict_validity = true;
    if (!checker::check_safety(cluster.recorder().ops(), copts).ok) ++violations;
  }
  AblationResult out;
  out.violations_pct = 100.0 * static_cast<double>(violations) / trials;
  return out;
}

AblationResult run_tag_rank_ablation(size_t rank) {
  harness::ClusterOptions o =
      make_options(harness::Protocol::kBsr, 5, 1, 3, 500, 1500);
  o.config.tag_rank_override = rank;
  o.num_writers = 1;
  o.num_readers = 1;
  harness::SimCluster cluster(o);
  cluster.set_byzantine(2, adversary::StrategyKind::kFabricate);  // tags ~1e9
  AblationResult out;
  for (int i = 0; i < 10; ++i) {
    const auto w = cluster.write(0, workload::make_value(3, i, 24));
    out.final_tag_num = w.tag.num;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("ablation: witness threshold (Lemma 5) and tag rank (Fig. 1 l.4)\n\n");

  std::printf("(a) reader witness threshold, n=5, f=1, one fabricating server\n");
  TextTable ta({"threshold", "paper value?", "safety violations (50 seeds)"});
  for (size_t th = 1; th <= 3; ++th) {
    const auto res = run_witness_ablation(th, 50);
    ta.add_row({std::to_string(th), th == 2 ? "f+1 = 2 <- paper" : "",
                TextTable::fmt(res.violations_pct, 0) + "%"});
  }
  std::printf("%s\n", ta.render().c_str());

  std::printf("(b) writer tag-selection rank, 10 writes, one tag-inflating server\n");
  TextTable tb({"rank", "paper value?", "tag.num after 10 writes"});
  for (size_t rank = 1; rank <= 3; ++rank) {
    const auto res = run_tag_rank_ablation(rank);
    tb.add_row({std::to_string(rank), rank == 2 ? "f+1 = 2 <- paper" : "",
                std::to_string(res.final_tag_num)});
  }
  std::printf("%s\n", tb.render().c_str());
  std::printf(
      "shape check: threshold f adopts fabricated values (Lemma 5 violated);\n"
      "rank 1 lets a single liar inflate tags past 10^9 (unbounded growth and\n"
      "a tag-exhaustion vector), while rank f+1 advances exactly +1 per write.\n");
  return 0;
}
