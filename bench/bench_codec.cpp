// E8 -- codec feasibility (Section IV-A): throughput of the [n, k] MDS
// code with k = n - 5f and Berlekamp-Welch error decoding.
//
// google-benchmark microbenchmarks: encode, erasure-only decode (fast
// interpolation path), and decode under the full Lemma 4 error budget
// (f Byzantine-garbage + f stale elements). Expected shape: encode/decode
// scale linearly in value size; error decoding costs a small constant
// factor over the clean path thanks to the error-locator fast path.
#include <benchmark/benchmark.h>

#include "codec/mds_code.h"
#include "common/rng.h"
#include "workload/workload.h"

using namespace bftreg;

namespace {

void bm_encode(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t f = static_cast<size_t>(state.range(1));
  const size_t size = static_cast<size_t>(state.range(2));
  const auto code = codec::MdsCode::for_bcsr(n, f);
  const Bytes value = workload::make_value(1, 0, size);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(value));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * size));
  state.counters["k"] = static_cast<double>(code.k());
}

void bm_decode_clean(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t f = static_cast<size_t>(state.range(1));
  const size_t size = static_cast<size_t>(state.range(2));
  const auto code = codec::MdsCode::for_bcsr(n, f);
  const Bytes value = workload::make_value(1, 0, size);
  const auto elements = code.encode(value);
  std::vector<std::optional<Bytes>> received(n);
  for (size_t i = 0; i < n - f; ++i) received[i] = elements[i];  // f erasures
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(received));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * size));
}

void bm_decode_adversarial(benchmark::State& state) {
  // The Lemma 4 worst case: f garbage + f stale among n-f received.
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t f = static_cast<size_t>(state.range(1));
  const size_t size = static_cast<size_t>(state.range(2));
  const auto code = codec::MdsCode::for_bcsr(n, f);
  const Bytes value = workload::make_value(1, 0, size);
  const Bytes old_value = workload::make_value(1, 1, size);
  const auto elements = code.encode(value);
  const auto old_elements = code.encode(old_value);
  Rng rng(7);
  std::vector<std::optional<Bytes>> received(n);
  for (size_t i = 0; i < n - f; ++i) received[i] = elements[i];
  for (size_t i = 0; i < f; ++i) {
    // garbage of the right size
    Bytes junk(elements[i].size());
    for (auto& b : junk) b = static_cast<uint8_t>(rng.uniform(256));
    received[i] = junk;
    received[f + i] = old_elements[f + i];  // stale
  }
  for (auto _ : state) {
    auto out = code.decode(received);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * size));
}

void codec_args(benchmark::internal::Benchmark* b) {
  for (int64_t size : {1 << 10, 16 << 10, 256 << 10}) {
    b->Args({6, 1, size});    // n = 5f+1, k = 1 (worst storage ratio)
    b->Args({11, 1, size});   // k = 6
    b->Args({16, 2, size});   // k = 6, f = 2
    b->Args({21, 3, size});   // k = 6, f = 3
  }
}

BENCHMARK(bm_encode)->Apply(codec_args)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_decode_clean)->Apply(codec_args)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_decode_adversarial)->Apply(codec_args)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
