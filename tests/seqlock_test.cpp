// Concurrency tests for the lock-free control-plane primitives: the
// double-buffered seqlock (common/seqlock.h) behind the server's newest-
// entry cache, and the bounded MPSC ring (common/mpsc_ring.h) behind the
// mailbox shards. Labeled `slow`: the sanitizer CI jobs include it (`ctest
// --preset tsan`), quick local runs skip it (`ctest -LE slow`).
//
// The seqlock tests follow the standard validation trio for published
// snapshots: correlated fields expose torn reads under constant flips,
// versions must never run backwards within a reader, and back-to-back reads
// must observe same-or-newer snapshots. The ring tests drive N producers
// against the single consumer and check the two properties the mailbox
// depends on: nothing is lost or duplicated, and each producer's items
// arrive in its push order (per-producer FIFO).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/mpsc_ring.h"
#include "common/seqlock.h"

namespace bftreg {
namespace {

/// Correlated fields make any torn read obvious: b must always equal ~a,
/// and the tail word pins the struct size above one cache line so a tear
/// cannot hide inside a single atomic word.
struct Snapshot {
  uint64_t a{0};
  uint64_t b{0};
  uint64_t pad[14]{};
};
static_assert(std::is_trivially_copyable_v<Snapshot>);

/// Spins until the writer thread has published at least once, so the
/// readers below never fail for the benign "nothing published" reason.
void prime_first_publish(const common::Seqlock<Snapshot>& lock) {
  Snapshot s;
  while (!lock.read(&s)) std::this_thread::yield();
}

TEST(SeqlockTest, ReadBeforeFirstPublishFails) {
  common::Seqlock<Snapshot> lock;
  Snapshot s;
  EXPECT_FALSE(lock.read(&s));
  lock.publish(Snapshot{1, ~uint64_t{1}, {}});
  uint64_t version = 0;
  ASSERT_TRUE(lock.read(&s, &version));
  EXPECT_EQ(s.a, 1u);
  EXPECT_EQ(version, 1u);
}

TEST(SeqlockTest, CoherentUnderConstantFlips) {
  common::Seqlock<Snapshot> lock;
  std::atomic<bool> run{true};
  std::thread writer([&] {
    uint64_t i = 0;
    while (run.load(std::memory_order_relaxed)) {
      lock.publish(Snapshot{i, ~i, {}});
      ++i;
    }
  });
  prime_first_publish(lock);

  for (int k = 0; k < 50000; ++k) {
    Snapshot s;
    ASSERT_TRUE(lock.read(&s));
    ASSERT_EQ(s.b, ~s.a) << "torn read at iteration " << k;
  }
  run.store(false, std::memory_order_relaxed);
  writer.join();
}

TEST(SeqlockTest, VersionsMonotonicPerReader) {
  common::Seqlock<Snapshot> lock;
  std::atomic<bool> run{true};
  std::thread writer([&] {
    uint64_t i = 0;
    while (run.load(std::memory_order_relaxed)) {
      lock.publish(Snapshot{i, ~i, {}});
      ++i;
    }
  });
  prime_first_publish(lock);

  uint64_t last_version = 0;
  for (int k = 0; k < 20000; ++k) {
    Snapshot s;
    uint64_t version = 0;
    ASSERT_TRUE(lock.read(&s, &version));
    ASSERT_GE(version, last_version) << "version ran backwards at " << k;
    last_version = version;
    ASSERT_EQ(s.b, ~s.a) << "torn read at iteration " << k;
  }
  run.store(false, std::memory_order_relaxed);
  writer.join();
}

TEST(SeqlockTest, DoubleReadStability) {
  common::Seqlock<Snapshot> lock;
  std::atomic<bool> run{true};
  std::thread writer([&] {
    uint64_t i = 0;
    while (run.load(std::memory_order_relaxed)) {
      lock.publish(Snapshot{i, ~i, {}});
      ++i;
    }
  });
  prime_first_publish(lock);

  for (int k = 0; k < 20000; ++k) {
    Snapshot s1, s2;
    uint64_t v1 = 0, v2 = 0;
    ASSERT_TRUE(lock.read(&s1, &v1));
    ASSERT_TRUE(lock.read(&s2, &v2));
    // Immediate re-read sees the same snapshot or a newer one, never older
    // and never torn.
    ASSERT_GE(v2, v1) << "second read older at iteration " << k;
    ASSERT_EQ(s1.b, ~s1.a);
    ASSERT_EQ(s2.b, ~s2.a);
    if (v1 == v2) ASSERT_EQ(s1.a, s2.a);
  }
  run.store(false, std::memory_order_relaxed);
  writer.join();
}

TEST(SeqlockTest, ManyConcurrentReaders) {
  common::Seqlock<Snapshot> lock;
  std::atomic<bool> run{true};
  std::thread writer([&] {
    uint64_t i = 0;
    while (run.load(std::memory_order_relaxed)) {
      lock.publish(Snapshot{i, ~i, {}});
      ++i;
    }
  });
  prime_first_publish(lock);

  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  std::atomic<int> failures{0};
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      uint64_t last_version = 0;
      for (int k = 0; k < 10000; ++k) {
        Snapshot s;
        uint64_t version = 0;
        if (!lock.read(&s, &version) || s.b != ~s.a || version < last_version) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        last_version = version;
      }
    });
  }
  for (auto& t : readers) t.join();
  run.store(false, std::memory_order_relaxed);
  writer.join();
  EXPECT_EQ(failures.load(), 0);
}

// --- MPSC ring --------------------------------------------------------------

struct RingItem {
  uint32_t producer{0};
  uint32_t seq{0};
};

TEST(MpscRingTest, FifoPerProducerNoLossNoDuplication) {
  constexpr uint32_t kProducers = 4;
  constexpr uint32_t kPerProducer = 50000;
  common::MpscRing<RingItem> ring(256);  // small: forces wraps + full backoff

  std::vector<std::thread> producers;
  for (uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (uint32_t i = 0; i < kPerProducer; ++i) {
        RingItem item{p, i};
        while (!ring.try_push(item)) std::this_thread::yield();
      }
    });
  }

  // Single consumer: drain until every producer's full run arrived,
  // checking per-producer order as items appear.
  std::vector<uint32_t> next_seq(kProducers, 0);
  uint64_t total = 0;
  uint64_t order_violations = 0;
  while (total < uint64_t{kProducers} * kPerProducer) {
    const size_t n = ring.consume_batch(
        [&](RingItem& item) {
          if (item.seq != next_seq[item.producer]) ++order_violations;
          ++next_seq[item.producer];
          ++total;
        },
        64);
    if (n == 0) std::this_thread::yield();
  }
  for (auto& t : producers) t.join();

  EXPECT_EQ(order_violations, 0u);
  EXPECT_EQ(total, uint64_t{kProducers} * kPerProducer);
  for (uint32_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_seq[p], kPerProducer) << "producer " << p;
  }
  // Fully drained: nothing invented, nothing retained.
  EXPECT_TRUE(ring.empty());
}

TEST(MpscRingTest, FullRingRejectsWithoutClobbering) {
  common::MpscRing<RingItem> ring(4);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.try_push(RingItem{0, i}));
  }
  RingItem rejected{0, 99};
  EXPECT_FALSE(ring.try_push(rejected));
  EXPECT_EQ(rejected.seq, 99u);  // full push leaves the item untouched

  uint32_t expect = 0;
  ring.consume_batch([&](RingItem& item) { EXPECT_EQ(item.seq, expect++); }, 4);
  EXPECT_EQ(expect, 4u);
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace bftreg
