#include "storage/persistent_server.h"

#include <algorithm>

#include "common/log.h"

namespace bftreg::storage {

using registers::MsgType;
using registers::RegisterMessage;
using registers::TaggedValue;

PersistentRegisterServer::PersistentRegisterServer(ProcessId self,
                                                   registers::SystemConfig config,
                                                   net::Transport* transport,
                                                   Bytes initial,
                                                   std::string wal_path,
                                                   RecoveryPolicy policy)
    : RegisterServer(self, std::move(config), transport, std::move(initial)),
      wal_(std::move(wal_path)) {
  const ReplayResult replayed = WriteAheadLog::replay(wal_.path());
  truncated_ = replayed.truncated_bytes;
  recovering_ = true;
  for (const WalRecord& r : replayed.records) {
    if (RegisterServer::apply_put(r.object, r.tag, r.value)) ++recovered_;
  }
  recovering_ = false;
  if (policy == RecoveryPolicy::kCatchUpBeforeServe) {
    // Not serving until begin_catch_up() has run its course: the replayed
    // state may be missing writes that completed while this server was
    // down, and answering from it would under-witness them.
    serving_.store(false, std::memory_order_release);
  }
}

bool PersistentRegisterServer::apply_put(uint32_t object, const Tag& tag,
                                         Bytes value) {
  // Probe-then-log-then-apply would double the map lookups; instead apply
  // first and log on success. Both orders are equivalent here: the ACK is
  // only sent after this handler returns, so a crash mid-handler loses the
  // ACK along with (at worst) the log record.
  if (recovering_) {
    // Replayed records are never re-logged; skip the log-copy entirely so
    // recovery moves each (possibly large) coded element exactly once.
    return RegisterServer::apply_put(object, tag, std::move(value));
  }
  Bytes copy = value;  // keep bytes for the log; base consumes `value`
  const bool added = RegisterServer::apply_put(object, tag, std::move(value));
  if (added) {
    wal_.append(WalRecord{object, tag, std::move(copy)});
  }
  return added;
}

void PersistentRegisterServer::compact() {
  std::vector<WalRecord> live;
  for (const uint32_t object : object_ids()) {
    for (const auto& [tag, value] : store(object)) {
      if (tag.is_initial()) continue;  // seeded, not logged
      live.push_back(WalRecord{object, tag, value});
    }
  }
  wal_.compact(live);
}

// --- recovery state machine -------------------------------------------------

void PersistentRegisterServer::on_message(const net::Envelope& env) {
  if (is_serving()) {
    RegisterServer::on_message(env);
    return;
  }
  handle_catch_up_message(env);
}

std::vector<ProcessId> PersistentRegisterServer::peers() const {
  std::vector<ProcessId> out;
  out.reserve(config_.n - 1);
  for (const ProcessId& s : config_.servers()) {
    if (s != self_) out.push_back(s);
  }
  return out;
}

void PersistentRegisterServer::begin_catch_up() {
  if (is_serving()) return;
  if (config_.catch_up_quorum() == 0) {
    // Degenerate clusters (n = f + 1, or n = 1) have no peer quorum to sync
    // from; the replayed state is all there is.
    finish_catch_up();
    return;
  }
  RegisterMessage query;
  query.type = MsgType::kQueryObjects;
  query.op_id = kCatchUpObjectsOp;
  query.epoch = view_epoch();
  const Bytes payload = query.encode();
  for (const ProcessId& p : peers()) {
    transport_->send(self_, p, payload);
  }
}

void PersistentRegisterServer::handle_catch_up_message(const net::Envelope& env) {
  auto msg = RegisterMessage::parse(env.payload);
  if (!msg) return;
  observe_epoch(msg->epoch);
  switch (msg->type) {
    case MsgType::kObjectsResp: {
      if (batch_phase_ || msg->op_id != kCatchUpObjectsOp ||
          !env.from.is_server() || env.from.index >= config_.n) {
        return;
      }
      if (!objects_peers_.insert(env.from.index).second) return;  // one vote
      object_union_.insert(msg->objects.begin(), msg->objects.end());
      if (objects_peers_.size() >= config_.catch_up_quorum()) {
        start_batch_phase();
      }
      return;
    }
    case MsgType::kDataBatchResp: {
      if (!batch_phase_ || msg->op_id != kCatchUpBatchOp ||
          !env.from.is_server() || env.from.index >= config_.n) {
        return;
      }
      if (!batch_peers_.insert(env.from.index).second) return;  // one vote
      const size_t count = std::min(msg->objects.size(), msg->history.size());
      for (size_t i = 0; i < count; ++i) {
        ++votes_[msg->objects[i]][msg->history[i]];
      }
      if (batch_peers_.size() < config_.catch_up_quorum()) return;
      // Quorum of peers voted. Adopt every (tag, value) group at least
      // witness_threshold() distinct peers agree on -- that pins an honest
      // holder behind the pair, and (file comment) guarantees every
      // completed write clears the bar. Adoption goes through the normal
      // logged apply_put, so the synced state survives the next crash.
      for (const auto& [object, groups] : votes_) {
        for (const auto& [pair, vote_count] : groups) {
          if (vote_count < config_.witness_threshold()) continue;
          if (apply_put(object, pair.tag, pair.value)) ++adopted_;
        }
      }
      finish_catch_up();
      return;
    }
    case MsgType::kViewAnnounce:
      return;  // epoch folded above; nothing else to do while catching up
    case MsgType::kQueryTag:
    case MsgType::kPutData:
    case MsgType::kQueryData:
    case MsgType::kQueryHistory:
    case MsgType::kQueryTagHistory:
    case MsgType::kQueryDataAt:
    case MsgType::kReadDone:
    case MsgType::kQueryDataBatch:
    case MsgType::kQueryObjects:
      // The proof obligation of kCatchUpBeforeServe: register traffic gets
      // NO reply (not a refusal message -- to the client we are just slow,
      // which every protocol tolerates). Counted so tests can assert the
      // requests arrived and were provably not answered.
      refused_.fetch_add(1, std::memory_order_relaxed);
      return;
    default:
      return;  // stray responses / RB frames: ignore
  }
}

void PersistentRegisterServer::start_batch_phase() {
  batch_phase_ = true;
  if (object_union_.empty()) {
    // A quorum of peers stores nothing beyond lazy initialization; the
    // replayed state is already complete.
    finish_catch_up();
    return;
  }
  RegisterMessage query;
  query.type = MsgType::kQueryDataBatch;
  query.op_id = kCatchUpBatchOp;
  query.epoch = view_epoch();
  // Same cap as the peers' batch handler; a larger union would need
  // multiple rounds, which no current workload produces (the cap exists to
  // bound a single Byzantine peer's influence, and ids beyond it would
  // simply be re-synced on the next restart).
  constexpr size_t kMaxBatch = 4096;
  for (const uint32_t object : object_union_) {
    if (query.objects.size() >= kMaxBatch) {
      LOG_WARN << to_string(self_) << ": catch-up union exceeds " << kMaxBatch
               << " objects; truncating this sync round";
      break;
    }
    query.objects.push_back(object);
  }
  const Bytes payload = query.encode();
  for (const ProcessId& p : peers()) {
    transport_->send(self_, p, payload);
  }
}

void PersistentRegisterServer::finish_catch_up() {
  serving_.store(true, std::memory_order_release);
  // Announce the rejoin: a fresh epoch over the full static set. Clients
  // not directly addressed learn by piggyback (every subsequent reply from
  // any server carries the new epoch) and retransmit straddling ops.
  broadcast_view(view_epoch() + 1, {}, config_.servers());
  LOG_INFO << to_string(self_) << ": catch-up complete (adopted " << adopted_
           << " pairs, refused " << refused_.load(std::memory_order_relaxed)
           << " requests), serving at epoch " << view_epoch();
}

}  // namespace bftreg::storage
