// Durable register server: RegisterServer + write-ahead logging.
//
// Applies the standard WAL discipline to Fig. 3/6's put-data-resp: every
// entry added to a list L is first appended to the log, and a restarted
// server replays the log before serving. Why this is safe in the paper's
// model: a recovered server resumes from a state it genuinely held, so to
// every client it is indistinguishable from a server that was merely slow
// -- a behaviour all the protocols already tolerate. (A server that lost
// its state and rejoined blank would NOT be safe: it could un-witness a
// value that a completed write counted on; see
// storage_test.cpp/RecoveryKeepsWitnessGuarantee.)
#pragma once

#include <string>

#include "registers/server.h"
#include "storage/wal.h"

namespace bftreg::storage {

class PersistentRegisterServer final : public registers::RegisterServer {
 public:
  /// Opens (or creates) the WAL at `wal_path` and replays it into the
  /// in-memory state before the server handles any message.
  PersistentRegisterServer(ProcessId self, registers::SystemConfig config,
                           net::Transport* transport, Bytes initial,
                           std::string wal_path);

  /// Records replayed during construction (0 for a fresh server).
  size_t recovered_records() const { return recovered_; }
  /// Tail bytes discarded during replay (torn final record).
  size_t recovered_truncated_bytes() const { return truncated_; }

  /// Rewrites the WAL to the current live state (drops superseded and
  /// duplicate entries).
  void compact();

  const WriteAheadLog& wal() const { return wal_; }

  /// Durable servers stay single-shard regardless of config: every applied
  /// put appends to one WAL, and a per-shard dispatch would interleave
  /// appends from several threads into an unsynchronized log.
  uint32_t delivery_shards() const override { return 1; }

 protected:
  bool apply_put(uint32_t object, const Tag& tag, Bytes value) override;

 private:
  WriteAheadLog wal_;
  bool recovering_{false};
  size_t recovered_{0};
  size_t truncated_{0};
};

}  // namespace bftreg::storage
