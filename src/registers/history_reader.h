// History-based regular read: first regularity fix of Section III-C.
//
// "We change line 9 of Algorithm 3 to send the entire history of writes (L)
// instead of just the locally available (t, v) pair."
//
// The read stays one-shot (a single QUERY-HISTORY round), but a server now
// *witnesses* every pair in its history, not just its newest. In the
// Theorem 3 counterexample this is exactly what rescues regularity: the
// four concurrent writers each reached only one server with their PUT-DATA,
// so no new pair has f+1 witnesses -- but the previously completed write is
// in every honest server's history and wins, instead of the read sliding
// back to v0.
//
// Costs: server-to-reader bandwidth grows with the history length
// (bench_regularity and bench_storage_comm quantify this against BSR).
#pragma once

#include <functional>
#include <map>

#include "net/transport.h"
#include "registers/bsr_reader.h"
#include "registers/config.h"
#include "registers/messages.h"
#include "registers/quorum.h"

namespace bftreg::registers {

class HistoryReader final : public net::IProcess {
 public:
  using Callback = std::function<void(const ReadResult&)>;

  HistoryReader(ProcessId self, SystemConfig config, net::Transport* transport,
                uint32_t object = 0);

  void start_read(Callback callback);
  void on_message(const net::Envelope& env) override;

  bool busy() const { return reading_; }
  const ProcessId& id() const { return self_; }
  const Tag& local_tag() const { return local_.tag; }

 private:
  void finish();

  const ProcessId self_;
  const SystemConfig config_;
  net::Transport* const transport_;
  const uint32_t object_;

  TaggedValue local_;

  bool reading_{false};
  uint64_t op_id_{0};
  QuorumTracker responded_;
  /// Witness counts: pair -> number of distinct servers whose history
  /// contains it this operation.
  std::map<TaggedValue, size_t> witnesses_;
  Callback callback_;
  TimeNs invoked_at_{0};
};

}  // namespace bftreg::registers
