// Durable register server: RegisterServer + write-ahead logging.
//
// Applies the standard WAL discipline to Fig. 3/6's put-data-resp: every
// entry added to a list L is first appended to the log, and a restarted
// server replays the log before serving. Why this is safe in the paper's
// model: a recovered server resumes from a state it genuinely held, so to
// every client it is indistinguishable from a server that was merely slow
// -- a behaviour all the protocols already tolerate. (A server that lost
// its state and rejoined blank would NOT be safe: it could un-witness a
// value that a completed write counted on; see
// storage_test.cpp/RecoveryKeepsWitnessGuarantee.)
//
// Recovery policy (dynamic membership, docs/MEMBERSHIP.md): replay alone
// restores only what THIS server had acknowledged before the crash. Writes
// that completed at a quorum while it was down are absent, and answering
// queries from that stale state would shrink the effective witness count of
// completed writes (exactly the hazard Bonomi et al.'s stabilizing storage
// guards against). Under kCatchUpBeforeServe the server therefore refuses
// all register traffic after replay until it has synced the newest state
// from a quorum of peers:
//
//   replay WAL --> kCatchingUp: refuse QUERY/PUT (count them, reply
//     nothing -- to clients it is indistinguishable from a slow server)
//     phase 1: QUERY-OBJECTS to every peer; union the ids from
//              catch_up_quorum() responders
//   --> phase 2: QUERY-DATA-BATCH over the union; per (tag, value) group
//              with >= witness_threshold() identical votes, adopt via the
//              normal logged apply_put
//   --> serving: announce the view (epoch + 1) so clients retarget ops
//
// Safety of the vote rule: a completed write is on >= n - f servers, so on
// >= n - f - 1 of this server's peers; any catch_up_quorum() = n - f - 1
// responders overlap those in >= n - 2f - 1 >= f + 1 honest servers for
// n >= 4f + 1 -- enough to clear the witness threshold, so no completed
// write can be lost, while f Byzantine peers can never fabricate one.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "registers/server.h"
#include "storage/wal.h"

namespace bftreg::storage {

/// What a restarted server may do between WAL replay and its first reply.
enum class RecoveryPolicy : uint8_t {
  /// Serve straight from the replayed state (the pre-reconfiguration
  /// behaviour; safe only if the server never missed a completed write,
  /// e.g. in single-process tests that restart the whole cluster).
  kServeImmediately = 0,
  /// Refuse all register traffic until quorum catch-up completes (the
  /// rejoin path; see the file comment).
  kCatchUpBeforeServe = 1,
};

class PersistentRegisterServer final : public registers::RegisterServer {
 public:
  /// Opens (or creates) the WAL at `wal_path` and replays it into the
  /// in-memory state before the server handles any message. Under
  /// kCatchUpBeforeServe the server comes up NOT serving; the harness must
  /// call begin_catch_up() once the transport can deliver to it.
  PersistentRegisterServer(ProcessId self, registers::SystemConfig config,
                           net::Transport* transport, Bytes initial,
                           std::string wal_path,
                           RecoveryPolicy policy = RecoveryPolicy::kServeImmediately);

  /// Records replayed during construction (0 for a fresh server).
  size_t recovered_records() const { return recovered_; }
  /// Tail bytes discarded during replay (torn final record).
  size_t recovered_truncated_bytes() const { return truncated_; }

  /// Rewrites the WAL to the current live state (drops superseded and
  /// duplicate entries).
  void compact();

  const WriteAheadLog& wal() const { return wal_; }

  /// Durable servers stay single-shard regardless of config: every applied
  /// put appends to one WAL, and a per-shard dispatch would interleave
  /// appends from several threads into an unsynchronized log.
  uint32_t delivery_shards() const override { return 1; }

  /// Refuses register traffic while catching up (see file comment).
  void on_message(const net::Envelope& env) override;

  // --- recovery state machine ---------------------------------------------

  /// Launches phase 1 (QUERY-OBJECTS to every peer). No-op when already
  /// serving. Must run after the transport can route this server's id.
  void begin_catch_up();

  /// False exactly while the catch-up state machine runs; any thread.
  bool is_serving() const { return serving_.load(std::memory_order_acquire); }

  /// QUERY/PUT requests dropped (unanswered) during catch-up: the proof
  /// obligation "a recovering server never answers before catch-up" is
  /// this counter being the only trace those requests left.
  uint64_t refused_while_catching_up() const {
    return refused_.load(std::memory_order_relaxed);
  }

  /// (tag, value) pairs adopted from peers during catch-up (WAL-logged).
  size_t catch_up_adopted() const { return adopted_; }

 protected:
  bool apply_put(uint32_t object, const Tag& tag, Bytes value) override;

 private:
  /// Catch-up wire ops use fixed ids in a namespace no client allocator
  /// produces (OpMux seq numbers are never 0 in the low word's high byte
  /// pattern below), so peer replies route unambiguously.
  static constexpr uint64_t kCatchUpObjectsOp = 0xB00075FA00000001ull;
  static constexpr uint64_t kCatchUpBatchOp = 0xB00075FA00000002ull;

  void handle_catch_up_message(const net::Envelope& env);
  void start_batch_phase();
  void finish_catch_up();
  std::vector<ProcessId> peers() const;

  WriteAheadLog wal_;
  bool recovering_{false};
  size_t recovered_{0};
  size_t truncated_{0};

  // --- catch-up state (single delivery shard: one thread mutates it) ------
  std::atomic<bool> serving_{true};
  std::atomic<uint64_t> refused_{0};
  bool batch_phase_{false};
  /// Peer indices heard from in each phase (dedup: one vote per peer).
  std::set<uint32_t> objects_peers_;
  std::set<uint32_t> batch_peers_;
  /// Union of object ids reported by phase-1 responders.
  std::set<uint32_t> object_union_;
  /// object -> (tag, value) -> distinct-peer vote count.
  std::map<uint32_t, std::map<registers::TaggedValue, size_t>> votes_;
  size_t adopted_{0};
};

}  // namespace bftreg::storage
