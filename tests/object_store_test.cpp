// Differential and concurrency tests for the compact object store
// (src/registers/object_store.h): the flat-hash + slab + log-ring layout is
// checked against the std::map reference model it replaced, under the same
// policy/GC semantics the servers rely on (Fig. 3 line 5, max_history GC),
// plus the paper-shaped histories -- Lemma 4's f garbage tags above every
// honest one, and Theorem 3's max_history=1 semi-fast schedule. A TSan
// stress drives the seqlock publish path of the new layout.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "registers/object_store.h"
#include "workload/workload.h"

namespace bftreg::registers {
namespace {

Bytes value_of(uint64_t seed, uint64_t i, size_t size) {
  return workload::make_value(seed, i, size);
}

/// The layout this store replaced, reduced to its semantics: one Tag-keyed
/// sorted map per object, seeded {t0, initial}, same policy + GC.
class ReferenceModel {
 public:
  ReferenceModel(Bytes initial, StorePolicy policy, size_t max_history)
      : initial_(std::move(initial)),
        policy_(policy),
        max_history_(max_history) {}

  /// Mirrors CompactObjectStore::apply; returns (added, bytes_delta).
  std::pair<bool, long long> apply(uint32_t object, const Tag& tag,
                                   const Bytes& value) {
    long long delta = 0;
    auto [it, inserted] = objects_.try_emplace(object);
    auto& log = it->second;
    if (inserted) {
      log.emplace(Tag::initial(), initial_);
      delta += static_cast<long long>(initial_.size());
    }
    bool added = false;
    switch (policy_) {
      case StorePolicy::kMaxOnly:
        if (log.rbegin()->first < tag) {
          log.emplace(tag, value);
          added = true;
        }
        break;
      case StorePolicy::kAll:
        added = log.emplace(tag, value).second;
        break;
    }
    if (added) {
      delta += static_cast<long long>(value.size());
      if (max_history_ > 0) {
        while (log.size() > max_history_) {
          delta -= static_cast<long long>(log.begin()->second.size());
          log.erase(log.begin());
        }
      }
    }
    return {added, delta};
  }

  const std::map<Tag, Bytes>* find(uint32_t object) const {
    const auto it = objects_.find(object);
    return it == objects_.end() ? nullptr : &it->second;
  }
  const std::map<uint32_t, std::map<Tag, Bytes>>& objects() const {
    return objects_;
  }

 private:
  Bytes initial_;
  StorePolicy policy_;
  size_t max_history_;
  std::map<uint32_t, std::map<Tag, Bytes>> objects_;
};

/// Every record's log must match the reference entry for entry, and the
/// published newest pair must match the reference maximum.
void expect_equal(const CompactObjectStore& store, const ReferenceModel& ref) {
  ASSERT_EQ(store.size(), ref.objects().size());
  for (const auto& [object, log] : ref.objects()) {
    const auto* rec = store.find(object);
    ASSERT_NE(rec, nullptr) << "object " << object;
    ASSERT_EQ(rec->log.size(), log.size()) << "object " << object;
    auto it = log.begin();
    for (const LogEntry& e : rec->log) {
      EXPECT_EQ(e.tag, it->first) << "object " << object;
      const BytesView v = e.val.view();
      EXPECT_EQ(Bytes(v.begin(), v.end()), it->second) << "object " << object;
      ++it;
    }
    Tag newest_tag;
    Bytes newest_value;
    ASSERT_TRUE(rec->newest.read(&newest_tag, &newest_value));
    EXPECT_EQ(newest_tag, log.rbegin()->first);
    EXPECT_EQ(newest_value, log.rbegin()->second);
  }
}

struct DifferentialCase {
  StorePolicy policy;
  size_t max_history;
};

class ObjectStoreDifferential
    : public ::testing::TestWithParam<DifferentialCase> {};

TEST_P(ObjectStoreDifferential, RandomizedInsertGcLookupMatchesReference) {
  const auto [policy, max_history] = GetParam();
  const Bytes initial = value_of(7, 0, 16);
  CompactObjectStore store(initial, policy, max_history);
  ReferenceModel ref(initial, policy, max_history);
  long long stored = static_cast<long long>(0);
  Rng rng(0xd1ff + max_history * 31 + static_cast<uint64_t>(policy));

  // Value sizes straddle every representation boundary: empty, inline
  // (<= 16), slab small, slab large, and the > 32 B oversize publish path.
  const size_t kSizes[] = {0, 1, 8, 16, 17, 33, 40, 200, 2048};
  for (int round = 0; round < 4000; ++round) {
    const auto object = static_cast<uint32_t>(rng.uniform(160));
    const Tag tag{rng.uniform(24),
                  ProcessId::writer(static_cast<uint32_t>(rng.uniform(3)))};
    const Bytes value =
        value_of(11, rng.next_u64() % 97,
                 kSizes[rng.uniform(std::size(kSizes))]);

    const auto res = store.apply(object, tag, BytesView(value));
    if (res.added) store.publish(*res.rec);
    stored += res.bytes_delta;
    const auto [ref_added, ref_delta] = ref.apply(object, tag, value);
    ASSERT_EQ(res.added, ref_added) << "round " << round;
    ASSERT_EQ(res.bytes_delta, ref_delta) << "round " << round;

    // Random negative lookups must not materialize state.
    EXPECT_EQ(store.find(static_cast<uint32_t>(1000 + rng.uniform(100))),
              nullptr);
    if (round % 400 == 399) {
      expect_equal(store, ref);
      EXPECT_EQ(static_cast<long long>(store.walk_value_bytes()), stored);
    }
  }
  expect_equal(store, ref);
  // The incremental deltas must reconcile with a full walk -- the check the
  // servers' NDEBUG-gated stored_bytes() audit performs.
  EXPECT_EQ(static_cast<long long>(store.walk_value_bytes()), stored);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndBudgets, ObjectStoreDifferential,
    ::testing::Values(DifferentialCase{StorePolicy::kAll, 0},
                      DifferentialCase{StorePolicy::kAll, 1},
                      DifferentialCase{StorePolicy::kAll, 3},
                      DifferentialCase{StorePolicy::kMaxOnly, 0},
                      DifferentialCase{StorePolicy::kMaxOnly, 1},
                      DifferentialCase{StorePolicy::kMaxOnly, 4}));

// Lemma 4's adversarial history: f Byzantine servers can contribute at most
// f garbage tags above every honest one. The store must keep them (it
// cannot authenticate), keep them SORTED above the honest prefix, and GC
// must evict oldest-first so the garbage does not displace the newest
// honest entry ordering.
TEST(ObjectStoreTest, LemmaFourGarbageTagsStaySortedAndGcOldestFirst) {
  const Bytes initial = value_of(1, 0, 8);
  CompactObjectStore store(initial, StorePolicy::kAll, 6);
  ReferenceModel ref(initial, StorePolicy::kAll, 6);

  // Honest history: tags 1..8 from writer 0 (some arriving out of order).
  const uint64_t order[] = {2, 1, 4, 3, 8, 6, 5, 7};
  for (const uint64_t num : order) {
    const Bytes v = value_of(2, num, 24);
    const auto res =
        store.apply(9, Tag{num, ProcessId::writer(0)}, BytesView(v));
    EXPECT_TRUE(res.added);
    store.publish(*res.rec);
    ref.apply(9, Tag{num, ProcessId::writer(0)}, v);
  }
  // f = 2 garbage tags far above anything honest.
  for (const uint64_t num : {1u << 20, 1u << 21}) {
    const Bytes v = value_of(3, num, 40);
    const auto res =
        store.apply(9, Tag{num, ProcessId::writer(2)}, BytesView(v));
    EXPECT_TRUE(res.added);
    store.publish(*res.rec);
    ref.apply(9, Tag{num, ProcessId::writer(2)}, v);
  }
  expect_equal(store, ref);

  const auto* rec = store.find(9);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->log.size(), 6u);
  EXPECT_EQ(rec->log.newest().tag.num, 1u << 21);
  // A reader that consults history below the garbage still finds the
  // honest tags the GC spared.
  EXPECT_NE(rec->log.find(Tag{7, ProcessId::writer(0)}), nullptr);
  EXPECT_EQ(rec->log.find(Tag{1, ProcessId::writer(0)}), nullptr);  // GC'd
}

// Theorem 3's semi-fast regime needs only the newest pair per object:
// max_history = 1 must behave as an atomic register cell -- every accepted
// write replaces the cell, storage stays O(1), and the slab recycles the
// evicted value blocks instead of leaking them.
TEST(ObjectStoreTest, MaxHistoryOneKeepsExactlyTheNewestPair) {
  const Bytes initial = value_of(4, 0, 8);
  CompactObjectStore store(initial, StorePolicy::kMaxOnly, 1);
  long long stored = 0;

  for (uint64_t num = 1; num <= 200; ++num) {
    const size_t size = 20 + (num % 5) * 30;  // all past the inline cap
    const Bytes v = value_of(5, num, size);
    const auto res =
        store.apply(3, Tag{num, ProcessId::writer(0)}, BytesView(v));
    ASSERT_TRUE(res.added);
    store.publish(*res.rec);
    stored += res.bytes_delta;

    const auto* rec = store.find(3);
    ASSERT_EQ(rec->log.size(), 1u);
    EXPECT_EQ(rec->log.newest().tag.num, num);
    EXPECT_EQ(static_cast<size_t>(stored), size);
    // A stale tag (Theorem 3's schedule: an old writer's put arriving
    // late) must be rejected, not resurrected.
    const auto stale =
        store.apply(3, Tag{num, ProcessId::writer(0)}, BytesView(v));
    EXPECT_FALSE(stale.added);
    EXPECT_EQ(stale.bytes_delta, 0);
  }
  EXPECT_EQ(store.walk_value_bytes(), static_cast<size_t>(stored));
  // 200 evictions of ~20-140 B blocks through a recycling slab: the arena
  // must stay within a couple of chunks, not grow per write.
  EXPECT_LT(store.resident_bytes(), 1u << 20);
}

// The seqlock publish path of the new layout under real concurrency: one
// owner thread applies + publishes monotonically-tagged self-describing
// values while readers hammer NewestCache::read through the lock-free
// index. Readers must never see a torn pair (value must match its tag) nor
// a tag moving backwards. Run under -preset tsan this also proves the
// data-race freedom of the 192-byte (unaligned-slot) record layout.
TEST(ObjectStoreTest, SeqlockPublishPathUnderConcurrentReaders) {
  CompactObjectStore store(value_of(6, 0, 16), StorePolicy::kMaxOnly, 2);
  constexpr uint32_t kObject = 17;
  constexpr uint64_t kWrites = 20000;
  // Sizes alternate across the inline boundary so readers cross between
  // the seqlock-inline and oversize shared_ptr representations.
  auto value_for = [](uint64_t num) {
    return value_of(8, num, num % 2 == 0 ? 16 : 48);
  };

  {
    const auto res = store.apply(kObject, Tag{1, ProcessId::writer(0)},
                                 BytesView(value_for(1)));
    store.publish(*res.rec);
  }
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      const NewestCache* cache = store.index().find(kObject);
      ASSERT_NE(cache, nullptr);
      uint64_t last = 0;
      while (!stop.load(std::memory_order_acquire)) {
        Tag tag;
        Bytes value;
        if (!cache->read(&tag, &value)) continue;
        if (tag.num < last) ++torn;
        last = tag.num;
        if (value != value_for(tag.num)) ++torn;
      }
    });
  }
  for (uint64_t num = 2; num <= kWrites; ++num) {
    const auto res = store.apply(kObject, Tag{num, ProcessId::writer(0)},
                                 BytesView(value_for(num)));
    ASSERT_TRUE(res.added);
    store.publish(*res.rec);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0u);

  Tag tag;
  Bytes value;
  ASSERT_TRUE(store.index().find(kObject)->read(&tag, &value));
  EXPECT_EQ(tag.num, kWrites);
  EXPECT_EQ(value, value_for(kWrites));
}

}  // namespace
}  // namespace bftreg::registers
