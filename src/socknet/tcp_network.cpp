#include "socknet/tcp_network.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/log.h"
#include "common/serde.h"

namespace bftreg::socknet {

namespace {

constexpr size_t kMaxFrame = 64 * 1024 * 1024;  // sanity cap: 64 MiB
/// Smallest useful recv() target; below this the chunk is rolled/reused.
constexpr size_t kMinRecv = 4096;
/// iovec budget per sendmsg (well under any platform's IOV_MAX).
constexpr size_t kMaxIov = 256;
/// epoll events handled per wake.
constexpr int kMaxEvents = 64;

uint32_t load_le32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

void store_le32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

void store_le64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

}  // namespace

struct TcpNetwork::Endpoint {
  ProcessId pid;
  net::IProcess* process{nullptr};
  // Atomic: stop() publishes -1 while the reader thread is still reading it.
  std::atomic<int> listen_fd{-1};
  uint16_t port{0};
  int epoll_fd{-1};
  int wake_fd{-1};  // eventfd; written to pop the reader out of epoll_wait

  std::thread reader_thread;
  std::thread writer_thread;

  // Accepted sockets, for debug_shutdown_inbound / stop() wakeups. The fds
  // themselves are owned (accepted, read, closed) by the reader thread.
  Mutex conn_mu;
  std::vector<int> conn_fds GUARDED_BY(conn_mu);

  // Delivery shards (runtime/mailbox.h): handler execution is serialized
  // per shard, one MPSC ring + consumer thread each. Single-shard for
  // every process that keeps the default IProcess contract.
  std::vector<std::unique_ptr<runtime::MailboxShard>> shards;
  std::vector<std::thread> mailbox_threads;

  // Outbound: send() appends sealed frames; the writer thread swaps whole
  // queues out and coalesces them into sendmsg calls. No syscall ever runs
  // under out_mu (enforced by the blocking-in-lock lint rule).
  Mutex out_mu;
  CondVar out_cv;
  std::map<ProcessId, OutQueue> out_queues GUARDED_BY(out_mu);
  bool writer_paused GUARDED_BY(out_mu){false};

  // Writer-thread private: destination -> connected fd.
  std::map<ProcessId, int> out_fds;

  // Receive-chunk recycler; shared so payload deleters can outlive us.
  std::shared_ptr<ChunkPool> pool;

  // Receive-path accounting (reader writes, tests read).
  std::atomic<uint64_t> chunks_allocated{0};
  std::atomic<uint64_t> tail_bytes_copied{0};
  std::atomic<uint64_t> payload_bytes_delivered{0};
};

TcpNetwork::TcpNetwork(TcpConfig config)
    : auth_(crypto::KeyRegistry(config.master_secret)),
      config_(config),
      epoch_(std::chrono::steady_clock::now()) {}

TcpNetwork::~TcpNetwork() {
  stop();
  // Endpoints registered but never start()ed still own their listener,
  // epoll, and wake fds (stop() reclaims them only for started endpoints,
  // after joining the reader; for the rest they are still live here).
  for (auto& [pid, ep] : endpoints_) {
    const int listen_fd = ep->listen_fd.exchange(-1);
    if (listen_fd >= 0) ::close(listen_fd);
    if (ep->epoll_fd >= 0) ::close(ep->epoll_fd);
    if (ep->wake_fd >= 0) ::close(ep->wake_fd);
    ep->wake_fd = ep->epoll_fd = -1;
  }
}

TimeNs TcpNetwork::now() const {
  return static_cast<TimeNs>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now() - epoch_)
                                 .count());
}

TcpNetwork::Endpoint* TcpNetwork::find(const ProcessId& pid) {
  auto it = endpoints_.find(pid);
  return it == endpoints_.end() ? nullptr : it->second.get();
}

const TcpNetwork::Endpoint* TcpNetwork::find(const ProcessId& pid) const {
  auto it = endpoints_.find(pid);
  return it == endpoints_.end() ? nullptr : it->second.get();
}

uint16_t TcpNetwork::port_of(const ProcessId& pid) const {
  const Endpoint* ep = find(pid);
  return ep == nullptr ? 0 : ep->port;
}

void TcpNetwork::add_process(const ProcessId& pid, net::IProcess* process) {
  assert(!running_.load());
  auto ep = std::make_unique<Endpoint>();
  ep->pid = pid;
  ep->process = process;
  ep->pool = std::make_shared<ChunkPool>(config_.recv_pool_bytes);
  const uint32_t nshards = std::max<uint32_t>(1, process->delivery_shards());
  ep->shards.reserve(nshards);
  for (uint32_t s = 0; s < nshards; ++s) {
    ep->shards.push_back(std::make_unique<runtime::MailboxShard>());
  }

  const int listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  assert(listen_fd >= 0);
  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ::inet_addr(config_.host);
  addr.sin_port = 0;  // ephemeral
  [[maybe_unused]] int rc =
      ::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  assert(rc == 0);
  rc = ::listen(listen_fd, 128);
  assert(rc == 0);

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len);
  ep->port = ntohs(bound.sin_port);
  ep->listen_fd.store(listen_fd);

  ep->epoll_fd = ::epoll_create1(0);
  assert(ep->epoll_fd >= 0);
  ep->wake_fd = ::eventfd(0, EFD_NONBLOCK);
  assert(ep->wake_fd >= 0);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = ep->wake_fd;
  ::epoll_ctl(ep->epoll_fd, EPOLL_CTL_ADD, ep->wake_fd, &ev);
  ev.data.fd = listen_fd;
  ::epoll_ctl(ep->epoll_fd, EPOLL_CTL_ADD, listen_fd, &ev);

  endpoints_[pid] = std::move(ep);
}

void TcpNetwork::start() {
  assert(!running_.exchange(true));
  {
    std::vector<ProcessId> pids;
    pids.reserve(endpoints_.size());
    for (const auto& [pid, ep] : endpoints_) pids.push_back(pid);
    auth_.precompute(pids);
  }
  timer_thread_ = std::thread([this] { timer_loop(); });
  for (auto& [pid, ep] : endpoints_) {
    Endpoint* e = ep.get();
    e->mailbox_threads.reserve(e->shards.size());
    for (auto& shard : e->shards) {
      runtime::MailboxShard* s = shard.get();
      e->mailbox_threads.emplace_back([this, s] { mailbox_loop(s); });
    }
    e->writer_thread = std::thread([this, e] { writer_loop(e); });
    e->reader_thread = std::thread([this, e] { reader_loop(e); });
    enqueue(e, [e] { e->process->on_start(); });
  }
}

bool TcpNetwork::on_internal_thread() const {
  const auto self = std::this_thread::get_id();
  if (timer_thread_.joinable() && self == timer_thread_.get_id()) return true;
  for (const auto& [pid, ep] : endpoints_) {
    if (ep->reader_thread.joinable() && self == ep->reader_thread.get_id())
      return true;
    if (ep->writer_thread.joinable() && self == ep->writer_thread.get_id())
      return true;
    for (const auto& t : ep->mailbox_threads) {
      if (t.joinable() && self == t.get_id()) return true;
    }
  }
  return false;
}

void TcpNetwork::stop() {
  if (!running_.exchange(false)) return;
  // Joining our own reader/writer/mailbox thread would deadlock; stop() is
  // an external-thread API (see header contract).
  assert(!on_internal_thread() && "stop() called from a network-owned thread");
  {
    MutexLock lock(timer_mu_);
    timer_cv_.notify_all();
  }
  if (timer_thread_.joinable()) timer_thread_.join();

  // Writers first: they drain what is already queued (readers are still
  // alive to consume it) and close the outbound fds on exit.
  for (auto& [pid, ep] : endpoints_) {
    MutexLock lock(ep->out_mu);
    ep->out_cv.notify_all();
  }
  for (auto& [pid, ep] : endpoints_) {
    if (ep->writer_thread.joinable()) ep->writer_thread.join();
  }

  // Readers: pop them out of epoll_wait; each closes its own fds on exit.
  for (auto& [pid, ep] : endpoints_) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t w = ::write(ep->wake_fd, &one, sizeof(one));
  }
  for (auto& [pid, ep] : endpoints_) {
    if (ep->reader_thread.joinable()) ep->reader_thread.join();
    // The reader is gone; reclaim the fds it was polling (done here, not at
    // reader exit, so the wake write above never races a close).
    const int listen_fd = ep->listen_fd.exchange(-1);
    if (listen_fd >= 0) ::close(listen_fd);
    if (ep->wake_fd >= 0) ::close(ep->wake_fd);
    if (ep->epoll_fd >= 0) ::close(ep->epoll_fd);
    ep->wake_fd = ep->epoll_fd = -1;
    // Readers are gone, so nothing publishes new deliveries; the shards
    // drain whatever is still queued before their consumers exit.
    for (auto& shard : ep->shards) shard->stop();
    for (auto& t : ep->mailbox_threads) {
      if (t.joinable()) t.join();
    }
  }
}

void TcpNetwork::enqueue(Endpoint* ep, std::function<void()> fn) {
  // Tasks (on_start, post, timer fires) always run on shard 0 so they keep
  // the single-context guarantee protocol clients rely on.
  if (ep->shards[0]->push_item(
          runtime::MailItem{nullptr, {}, std::move(fn)})) {
    metrics_.on_mailbox_overflow();
  }
}

void TcpNetwork::deliver(Endpoint* ep, net::Envelope env) {
  net::IProcess* proc = ep->process;
  // shard_of runs on the reader thread by contract (pure function of the
  // envelope); the modulo keeps a buggy override in range.
  uint32_t shard = 0;
  if (ep->shards.size() > 1) {
    shard = proc->shard_of(env) % static_cast<uint32_t>(ep->shards.size());
  }
  if (ep->shards[shard]->push_item(
          runtime::MailItem{proc, std::move(env), nullptr})) {
    metrics_.on_mailbox_overflow();
  }
}

void TcpNetwork::mailbox_loop(runtime::MailboxShard* shard) {
  auto handle = [](runtime::MailItem& item) {
    if (item.proc != nullptr) {
      item.proc->on_message(item.env);
    } else if (item.fn) {
      item.fn();
    }
  };
  while (shard->pop_wait_consume(handle)) {
  }
}

// --- inbound ---------------------------------------------------------------

void TcpNetwork::reader_loop(Endpoint* ep) {
  std::map<int, ConnState> conns;
  epoll_event evs[kMaxEvents];

  for (;;) {
    const int n = ::epoll_wait(ep->epoll_fd, evs, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (!running_.load()) break;
    for (int i = 0; i < n; ++i) {
      const int fd = evs[i].data.fd;
      if (fd == ep->wake_fd) {
        uint64_t v;
        [[maybe_unused]] ssize_t r = ::read(ep->wake_fd, &v, sizeof(v));
        continue;
      }
      if (fd == ep->listen_fd.load()) {
        accept_ready(ep);
        continue;
      }
      auto it = conns.find(fd);
      if (it == conns.end()) {
        // Raced with accept: state created on first readiness.
        it = conns.emplace(fd, ConnState{}).first;
      }
      // conn_readable publishes every parsed frame straight into its
      // shard's ring (deliver()), so the handler thread drains while we
      // keep reading and freed chunks recycle into the pool continuously
      // -- the old whole-batch hand-off could pin tens of chunks across
      // one readiness wake.
      if (!conn_readable(ep, fd, it->second)) {
        close_conn(ep, fd);
        conns.erase(it);
      }
    }
  }

  for (auto& [fd, st] : conns) close_conn(ep, fd);
  // listen/wake/epoll fds are closed by stop() AFTER this thread is joined:
  // closing them here would race the wake write in stop() (and an unlucky
  // fd reuse would make that write land in an unrelated descriptor).
}

void TcpNetwork::accept_ready(Endpoint* ep) {
  const int listen_fd = ep->listen_fd.load();
  if (listen_fd < 0) return;
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) return;  // EAGAIN (drained) or listener closing
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(ep->epoll_fd, EPOLL_CTL_ADD, fd, &ev);
    MutexLock lock(ep->conn_mu);
    ep->conn_fds.push_back(fd);
  }
}

void TcpNetwork::close_conn(Endpoint* ep, int fd) {
  ::epoll_ctl(ep->epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  MutexLock lock(ep->conn_mu);
  std::erase(ep->conn_fds, fd);
}

bool TcpNetwork::conn_readable(Endpoint* ep, int fd, ConnState& st) {
  for (;;) {
    if (!ensure_recv_space(ep, st)) return false;
    Chunk& c = *st.chunk;
    const ssize_t r =
        ::recv(fd, c.data.get() + c.filled, c.cap - c.filled, 0);
    if (r > 0) {
      c.filled += static_cast<size_t>(r);
      if (!parse_frames(ep, st)) return false;
      continue;  // drain until EAGAIN; level-triggered epoll backs us up
    }
    if (r == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
}

/// Pops a pooled chunk of at least `min_cap` or allocates a fresh one. The
/// returned shared_ptr's deleter pushes the chunk back into the pool when
/// the last aliasing payload dies, so steady-state traffic recycles a small
/// working set of buffers instead of churning the allocator.
std::shared_ptr<TcpNetwork::Chunk> TcpNetwork::acquire_chunk(Endpoint* ep,
                                                             size_t min_cap) {
  std::shared_ptr<ChunkPool> pool = ep->pool;
  std::unique_ptr<Chunk> chunk;
  {
    MutexLock lock(pool->mu);
    for (auto it = pool->free_list.rbegin(); it != pool->free_list.rend(); ++it) {
      if ((*it)->cap < min_cap) continue;
      chunk = std::move(*it);
      pool->bytes -= chunk->cap;
      pool->free_list.erase(std::next(it).base());
      break;
    }
  }
  if (!chunk) {
    chunk = std::make_unique<Chunk>(min_cap);
    ep->chunks_allocated.fetch_add(1, std::memory_order_relaxed);
  }
  chunk->filled = 0;
  return std::shared_ptr<Chunk>(chunk.release(), [pool](Chunk* c) {
    std::unique_ptr<Chunk> owned(c);
    MutexLock lock(pool->mu);
    if (pool->bytes + owned->cap <= pool->max_bytes) {
      pool->bytes += owned->cap;
      pool->free_list.push_back(std::move(owned));
    }
  });
}

/// Guarantees room to recv into the chunk with the pending partial frame
/// (if any) kept contiguous. Chunks still referenced by delivered payloads
/// are never reused; unreferenced ones are recycled in place.
bool TcpNetwork::ensure_recv_space(Endpoint* ep, ConnState& st) {
  const size_t default_cap = std::max(config_.recv_chunk_bytes, kMinRecv);
  if (!st.chunk) {
    st.chunk = acquire_chunk(ep, default_cap);
    return true;
  }
  Chunk& c = *st.chunk;
  const size_t unparsed = c.filled - st.parse_pos;

  // How much contiguous room the data at parse_pos needs: the whole next
  // frame if its header is visible (parse_frames validated it), otherwise
  // just a minimum read window.
  size_t needed = unparsed + kMinRecv;
  if (unparsed >= 4) {
    const uint32_t frame_len = load_le32(c.data.get() + st.parse_pos);
    needed = std::max(needed, size_t{4} + frame_len);
  }
  if (c.cap - st.parse_pos >= needed && c.cap > c.filled) return true;

  if (unparsed == 0 && st.chunk.use_count() == 1) {
    // Nothing pending and no delivered view aliases us: recycle in place.
    c.filled = 0;
    st.parse_pos = 0;
    return true;
  }

  auto fresh = acquire_chunk(ep, std::max(default_cap, needed));
  if (unparsed > 0) {
    // The only copy on the receive path: a partial frame's tail carried
    // into the new chunk. Bounded by one chunk regardless of payload size
    // (tests assert this via recv_stats).
    std::memcpy(fresh->data.get(), c.data.get() + st.parse_pos, unparsed);
    ep->tail_bytes_copied.fetch_add(unparsed, std::memory_order_relaxed);
  }
  fresh->filled = unparsed;
  st.chunk = std::move(fresh);
  st.parse_pos = 0;
  return true;
}

/// Parses every complete frame at parse_pos, publishing envelopes whose
/// payloads alias the chunk straight into their delivery shard. Returns
/// false to kill the connection (corrupt framing); forged MACs only drop
/// the frame.
bool TcpNetwork::parse_frames(Endpoint* ep, ConnState& st) {
  Chunk& c = *st.chunk;
  for (;;) {
    const size_t avail = c.filled - st.parse_pos;
    if (avail < 4) return true;
    const uint8_t* base = c.data.get() + st.parse_pos;
    const uint32_t frame_len = load_le32(base);
    if (frame_len < kHeaderSize - 4 || frame_len > kMaxFrame) return false;
    if (avail < size_t{4} + frame_len) return true;  // incomplete

    Deserializer d(base + 4, kHeaderSize - 4);
    const ProcessId from = d.get_process_id();
    const ProcessId to = d.get_process_id();
    const uint64_t mac = d.get_u64();
    if (!d.ok() || !(to == ep->pid)) return false;  // misrouted or corrupt

    const BytesView payload(base + kHeaderSize, frame_len - (kHeaderSize - 4));
    st.parse_pos += size_t{4} + frame_len;

    if (!auth_.verify(from, to, payload, mac)) {
      metrics_.on_auth_failure();
      continue;  // drop the forged frame, keep the connection
    }
    metrics_.on_deliver();
    ep->payload_bytes_delivered.fetch_add(payload.size(),
                                          std::memory_order_relaxed);
    net::Envelope env;
    env.from = from;
    env.to = to;
    env.mac = mac;
    env.payload = Payload(st.chunk, payload);
    deliver(ep, std::move(env));
  }
}

// --- outbound --------------------------------------------------------------

int TcpNetwork::connect_to(const ProcessId& to) {
  Endpoint* dst = find(to);
  if (dst == nullptr) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ::inet_addr(config_.host);
  addr.sin_port = htons(dst->port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void TcpNetwork::send_payload(const ProcessId& from, const ProcessId& to,
                              Payload payload) {
  if (!running_.load()) return;
  Endpoint* src = find(from);
  if (src == nullptr) return;

  // Seal the fixed-size header straight into the frame: no Serializer
  // buffer, no payload concatenation (the writer scatter-gathers).
  OutFrame frame;
  uint8_t* h = frame.header.data();
  store_le32(h, static_cast<uint32_t>(kHeaderSize - 4 + payload.size()));
  h[4] = static_cast<uint8_t>(from.role);
  store_le32(h + 5, from.index);
  h[9] = static_cast<uint8_t>(to.role);
  store_le32(h + 10, to.index);
  store_le64(h + 14, auth_.seal(from, to, payload));

  metrics_.on_send(payload.size());
  frame.payload = std::move(payload);
  const size_t frame_bytes = kHeaderSize + frame.payload.size();

  MutexLock lock(src->out_mu);
  OutQueue& q = src->out_queues[to];
  if (!q.pending.empty() && q.pending_bytes + frame_bytes > config_.max_outbox_bytes) {
    metrics_.on_drop();  // bounded queue: shed instead of growing
    return;
  }
  const bool was_idle = q.pending.empty();
  q.pending_bytes += frame_bytes;
  q.pending.push_back(std::move(frame));
  // Only an empty->non-empty transition can find the writer asleep; a
  // non-empty queue means a prior send already signalled (or the writer is
  // mid-flush and re-gathers before waiting).
  if (was_idle) src->out_cv.notify_one();
}

void TcpNetwork::writer_loop(Endpoint* ep) {
  // (destination, frames) batches swapped out under the lock, flushed
  // outside it -- the writer owns all outbound sockets and is the only
  // thread that blocks on them.
  std::vector<std::pair<ProcessId, std::deque<OutFrame>>> work;
  for (;;) {
    work.clear();
    {
      MutexLock lock(ep->out_mu);
      for (;;) {
        if (!ep->writer_paused) {
          for (auto& [to, q] : ep->out_queues) {
            if (q.pending.empty()) continue;
            work.emplace_back(to, std::move(q.pending));
            q.pending.clear();
            q.pending_bytes = 0;
          }
        }
        if (!work.empty() || !running_.load()) break;
        ep->out_cv.wait(lock);
      }
    }
    if (work.empty()) break;  // stopped and drained
    for (auto& [to, frames] : work) flush_to(ep, to, &frames);
  }
  for (auto& [to, fd] : ep->out_fds) ::close(fd);
  ep->out_fds.clear();
}

void TcpNetwork::flush_to(Endpoint* ep, const ProcessId& to,
                          std::deque<OutFrame>* frames) {
  auto it = ep->out_fds.find(to);
  if (it == ep->out_fds.end()) {
    const int fd = connect_to(to);
    if (fd < 0) {  // destination gone (e.g. stopping)
      metrics_.on_drop_n(frames->size());
      return;
    }
    it = ep->out_fds.emplace(to, fd).first;
  }
  if (!sendmsg_frames(it->second, frames)) {
    ::close(it->second);
    ep->out_fds.erase(it);
    // One reconnect attempt; drop on repeated failure (TCP gives us
    // reliable FIFO while up; process failure is a crash in the model).
    // Frames fully written to the dead socket are not resent -- the model's
    // channels may lose messages only when an endpoint crashed, and client
    // deadlines retransmit.
    const int fd = connect_to(to);
    if (fd < 0) {
      metrics_.on_drop_n(frames->size());
      return;
    }
    ep->out_fds.emplace(to, fd);
    if (!sendmsg_frames(fd, frames)) metrics_.on_drop_n(frames->size());
  }
}

/// Coalesces frames into as few sendmsg calls as the iovec budget allows.
/// On failure returns false with `frames` trimmed to the unsent suffix
/// (front frame possibly partially transmitted on the dead connection).
bool TcpNetwork::sendmsg_frames(int fd, std::deque<OutFrame>* frames) {
  size_t offset = 0;  // bytes of frames->front() already on the wire
  while (!frames->empty()) {
    iovec iov[kMaxIov];
    size_t niov = 0;
    for (auto it = frames->begin();
         it != frames->end() && niov + 2 <= kMaxIov; ++it) {
      size_t off = (it == frames->begin()) ? offset : 0;
      if (off < kHeaderSize) {
        iov[niov].iov_base = it->header.data() + off;
        iov[niov].iov_len = kHeaderSize - off;
        ++niov;
        off = 0;
      } else {
        off -= kHeaderSize;
      }
      if (it->payload.size() > off) {
        // iovec's iov_base is non-const by design; sendmsg only reads.
        iov[niov].iov_base = const_cast<uint8_t*>(it->payload.data()) + off;
        iov[niov].iov_len = it->payload.size() - off;
        ++niov;
      }
    }
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = niov;
    const ssize_t w = ::sendmsg(fd, &mh, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    size_t advanced = offset + static_cast<size_t>(w);
    while (!frames->empty()) {
      const size_t flen = kHeaderSize + frames->front().payload.size();
      if (advanced < flen) break;
      advanced -= flen;
      frames->pop_front();
    }
    offset = advanced;
  }
  return true;
}

// --- timers / posting ------------------------------------------------------

void TcpNetwork::timer_loop() {
  MutexLock lock(timer_mu_);
  for (;;) {
    if (!running_.load()) return;  // pending timers are dropped at shutdown
    if (timer_queue_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    const TimeNs due = timer_queue_.top().due;
    const TimeNs t = now();
    if (t < due) {
      timer_cv_.wait_for(lock, std::chrono::nanoseconds(due - t));
      continue;
    }
    Timer timer = std::move(const_cast<Timer&>(timer_queue_.top()));
    timer_queue_.pop();
    lock.unlock();
    post(timer.pid, std::move(timer.fn));
    lock.lock();
  }
}

void TcpNetwork::post_after(const ProcessId& pid, TimeNs delta,
                            std::function<void()> fn) {
  if (delta == 0) {
    post(pid, std::move(fn));
    return;
  }
  MutexLock lock(timer_mu_);
  timer_queue_.push(Timer{now() + delta, timer_seq_.fetch_add(1), pid, std::move(fn)});
  timer_cv_.notify_one();
}

void TcpNetwork::post(const ProcessId& pid, std::function<void()> fn) {
  if (Endpoint* ep = find(pid)) enqueue(ep, std::move(fn));
}

// --- test hooks ------------------------------------------------------------

TcpNetwork::RecvStats TcpNetwork::recv_stats(const ProcessId& pid) const {
  RecvStats out;
  if (const Endpoint* ep = find(pid)) {
    out.chunks_allocated = ep->chunks_allocated.load(std::memory_order_relaxed);
    out.tail_bytes_copied = ep->tail_bytes_copied.load(std::memory_order_relaxed);
    out.payload_bytes_delivered =
        ep->payload_bytes_delivered.load(std::memory_order_relaxed);
  }
  return out;
}

void TcpNetwork::debug_shutdown_inbound(const ProcessId& pid) {
  Endpoint* ep = find(pid);
  if (ep == nullptr) return;
  std::vector<int> fds;
  {
    MutexLock lock(ep->conn_mu);
    fds.assign(ep->conn_fds.begin(), ep->conn_fds.end());
  }
  // Shut down (not close) outside conn_mu: the reader owns the fds and
  // reaps them on the EOF this provokes, and it must not have to wait for
  // a debug hook's syscall to make progress on that lock. Racing a
  // concurrent reap can at worst aim shutdown(2) at a closed or recycled
  // descriptor -- acceptable for this chaos-injection hook, which the
  // harness only fires at connections it is deliberately killing.
  for (int fd : fds) ::shutdown(fd, SHUT_RDWR);
}

void TcpNetwork::debug_pause_writer(const ProcessId& pid, bool paused) {
  Endpoint* ep = find(pid);
  if (ep == nullptr) return;
  MutexLock lock(ep->out_mu);
  ep->writer_paused = paused;
  ep->out_cv.notify_all();
}

size_t TcpNetwork::debug_outbox_bytes(const ProcessId& from,
                                      const ProcessId& to) const {
  // Locks, hence the const_cast of the map lookup (endpoints_ itself is
  // immutable after start()).
  Endpoint* ep = const_cast<TcpNetwork*>(this)->find(from);
  if (ep == nullptr) return 0;
  MutexLock lock(ep->out_mu);
  auto it = ep->out_queues.find(to);
  return it == ep->out_queues.end() ? 0 : it->second.pending_bytes;
}

}  // namespace bftreg::socknet
