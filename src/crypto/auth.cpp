#include "crypto/auth.h"

#include "common/serde.h"

namespace bftreg::crypto {

SipHashKey KeyRegistry::channel_key(const ProcessId& from, const ProcessId& to) const {
  // Domain-separated derivation: key parts are SipHash of the endpoint ids
  // under master-derived keys. The adversary never sees `master_`.
  Serializer s;
  s.put_process_id(from);
  s.put_process_id(to);
  const Bytes ids = s.take();
  const SipHashKey d0{master_, 0x6b65792d64657230ULL};  // "key-der0"
  const SipHashKey d1{master_, 0x6b65792d64657231ULL};  // "key-der1"
  return SipHashKey{siphash24(d0, ids), siphash24(d1, ids)};
}

MacTag Authenticator::seal(const ProcessId& from, const ProcessId& to,
                           BytesView payload) const {
  return siphash24(registry_.channel_key(from, to), payload);
}

bool Authenticator::verify(const ProcessId& from, const ProcessId& to,
                           BytesView payload, MacTag mac) const {
  return seal(from, to, payload) == mac;
}

}  // namespace bftreg::crypto
