// bftreg_lint: whole-program protocol analysis over src/.
//
// Usage: bftreg_lint [repo_root] [--sarif <out.sarif>]
//        (repo_root defaults to the current directory)
//
// Exit code 0 when clean, 1 on violations, 2 on I/O or usage errors.
// Registered as the `bftreg_lint` ctest test so `ctest` fails when a banned
// pattern lands; --sarif additionally writes a SARIF 2.1.0 document (always,
// even when clean) for CI code-scanning upload. The rule list and the waiver
// syntax are documented in tools/lint_rules.h and docs/ANALYSIS.md.
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>

#include "tools/lint_rules.h"

int main(int argc, char** argv) {
  std::string root = ".";
  std::string sarif_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sarif") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bftreg_lint: --sarif needs an output path\n");
        return 2;
      }
      sarif_path = argv[++i];
    } else {
      root = arg;
    }
  }
  try {
    const auto violations = bftreg::lint::lint_tree(root);
    for (const auto& v : violations) {
      std::fprintf(stderr, "%s\n", bftreg::lint::format(v).c_str());
    }
    if (!sarif_path.empty()) {
      std::ofstream out(sarif_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "bftreg_lint: cannot write %s\n",
                     sarif_path.c_str());
        return 2;
      }
      out << bftreg::lint::to_sarif(violations);
    }
    if (!violations.empty()) {
      std::fprintf(stderr, "bftreg_lint: %zu violation(s)\n", violations.size());
      return 1;
    }
    std::printf("bftreg_lint: clean\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bftreg_lint: %s\n", e.what());
    return 2;
  }
}
