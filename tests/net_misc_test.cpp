// Coverage for the remaining utility surfaces: delay models, quorum
// tracking, Result, and logging.
#include <gtest/gtest.h>

#include <memory>

#include "common/log.h"
#include "common/stats.h"
#include "common/result.h"
#include "net/delay.h"
#include "registers/quorum.h"

namespace bftreg {
namespace {

net::Envelope env_between(ProcessId from, ProcessId to) {
  net::Envelope e;
  e.from = from;
  e.to = to;
  return e;
}

TEST(DelayModelTest, FixedDelayIsConstant) {
  net::FixedDelay d(123);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(d.delay(env_between(ProcessId::writer(0), ProcessId::server(0)), rng),
              123u);
  }
}

TEST(DelayModelTest, UniformDelayStaysInRange) {
  net::UniformDelay d(100, 200);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const TimeNs v =
        d.delay(env_between(ProcessId::writer(0), ProcessId::server(0)), rng);
    EXPECT_GE(v, 100u);
    EXPECT_LE(v, 200u);
  }
}

TEST(DelayModelTest, ExponentialDelayRespectsMinimumAndMean) {
  net::ExponentialDelay d(500, 1000.0);
  Rng rng(3);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const TimeNs v =
        d.delay(env_between(ProcessId::writer(0), ProcessId::server(0)), rng);
    EXPECT_GE(v, 500u);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / n, 1500.0, 50.0);  // min + mean
}

TEST(DelayModelTest, LognormalDelayIsHeavyTailed) {
  net::LognormalDelay d(0, 6.0, 1.5);
  Rng rng(4);
  Samples s;
  for (int i = 0; i < 20000; ++i) {
    s.add(static_cast<double>(
        d.delay(env_between(ProcessId::writer(0), ProcessId::server(0)), rng)));
  }
  // Heavy tail: p99 dwarfs the median.
  EXPECT_GT(s.p99(), 5 * s.median());
}

TEST(DelayModelTest, ScriptedDelayPrecedence) {
  auto scripted = net::ScriptedDelay(std::make_unique<net::FixedDelay>(10));
  Rng rng(5);
  const auto e = env_between(ProcessId::writer(0), ProcessId::server(1));

  EXPECT_EQ(scripted.delay(e, rng), 10u);  // base

  scripted.set_link_delay(ProcessId::writer(0), ProcessId::server(1), 77);
  EXPECT_EQ(scripted.delay(e, rng), 77u);  // link override beats base

  scripted.set_hook([](const net::Envelope&) { return std::optional<TimeNs>{5}; });
  EXPECT_EQ(scripted.delay(e, rng), 5u);  // hook beats link

  scripted.set_hook(
      [](const net::Envelope&) { return std::optional<TimeNs>{}; });
  EXPECT_EQ(scripted.delay(e, rng), 77u);  // declining hook falls through

  scripted.clear_hook();
  scripted.clear_link_delay(ProcessId::writer(0), ProcessId::server(1));
  EXPECT_EQ(scripted.delay(e, rng), 10u);  // back to base

  scripted.set_link_delay(ProcessId::writer(0), ProcessId::server(1), 99);
  scripted.clear_all_links();
  EXPECT_EQ(scripted.delay(e, rng), 10u);
}

TEST(QuorumTrackerTest, CountsDistinctServersOnly) {
  registers::QuorumTracker q(3);
  EXPECT_FALSE(q.reached());
  EXPECT_TRUE(q.add(ProcessId::server(0)));
  EXPECT_FALSE(q.add(ProcessId::server(0)));  // duplicate
  EXPECT_TRUE(q.add(ProcessId::server(1)));
  EXPECT_EQ(q.count(), 2u);
  EXPECT_FALSE(q.reached());
  EXPECT_TRUE(q.add(ProcessId::server(2)));
  EXPECT_TRUE(q.reached());
  EXPECT_TRUE(q.contains(ProcessId::server(1)));
  EXPECT_FALSE(q.contains(ProcessId::server(9)));
  q.reset();
  EXPECT_EQ(q.count(), 0u);
  EXPECT_FALSE(q.reached());
}

TEST(ResultTest, OkAndErrorPaths) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(static_cast<bool>(ok));
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.value_or(7), 42);

  Result<int> err(Errc::kDecodeFailed, "too many errors");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.value_or(7), 7);
  EXPECT_EQ(err.error().code, Errc::kDecodeFailed);
  EXPECT_EQ(err.error().detail, "too many errors");
}

TEST(ResultTest, ErrcNamesAreStable) {
  EXPECT_STREQ(to_string(Errc::kOk), "ok");
  EXPECT_STREQ(to_string(Errc::kDecodeFailed), "decode failed");
  EXPECT_STREQ(to_string(Errc::kAuthFailed), "authentication failed");
}

TEST(LogTest, LevelGatingWorks) {
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // These must not crash and must be cheap no-ops below the level.
  LOG_DEBUG << "invisible " << 1;
  LOG_INFO << "invisible " << 2;
  set_log_level(LogLevel::kOff);
  LOG_ERROR << "also invisible";
  set_log_level(prev);
}

}  // namespace
}  // namespace bftreg
