// Open-loop client-fleet load generator: thousands of concurrent
// RegisterClients against one register server over the event-loop TCP
// transport.
//
//   bench_loadgen                 connections-vs-throughput/latency curve
//   bench_loadgen --json=PATH     machine-readable snapshot (schema
//                                 bftreg-bench-transport-v1, rows keyed
//                                 transport="loadgen"/size/fanin)
//                 [--quick]       small fleets (256, 1024) for CI
//                 [--seed=N]      zipfian/workload seed
//                 [--duration=S]  measurement window per point
//
// Open-loop means arrivals do not wait for completions: operation i's
// *intended* start time is t0 + i/rate on a fixed schedule, and latency is
// measured from that intended start -- not from when the dispatcher got
// around to issuing it. A transport that stalls therefore accumulates the
// stall into every queued operation's latency instead of silently slowing
// the arrival clock (coordinated omission). Closed-loop benches
// (bench_transport's credit windows) can't see this failure mode.
//
// Topology: one RegisterServer (n = 1, f = 0 -- the resilience bound is
// bench_resilience_bounds' job; here the server is deliberately trivial so
// the transport is the bottleneck) and `fanin` RegisterClients registered
// listen-less, so each client costs one duplex socket pair and no
// listener. Keys are zipfian (theta 0.99, YCSB's default skew) over 64
// registers; a single writer mutates the hot keys at 1% of the read rate,
// honoring the paper's SWMR model. Every client op carries a deadline
// (OpOptions) so a shed frame surfaces as result.timed_out, never a hang.
//
// The JSON rows ride the bftreg-bench-transport-v1 schema:
// tools/bench_regress gates msgs_per_sec/mbps (>20% drop fails CI) while
// p50_us/p99_us are recorded but ungated -- wall-clock latency on shared
// CI hosts is information, not a contract.
#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "registers/registers.h"
#include "socknet/tcp_network.h"
#include "workload.h"
#include "workload/workload.h"

namespace bftreg::bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kObjects = 64;
constexpr size_t kValueSize = 128;
constexpr double kZipfTheta = 0.99;
/// The paper's motivating mix (99% reads) as a YCSB point: zipfian keys,
/// a 1% single-writer update stream (bench/workload.h owns the kinds).
constexpr YcsbMix kLoadgenMix{"loadgen", 0.99, 0.01, 0.0};

/// Raises RLIMIT_NOFILE's soft limit to the hard limit and returns it.
/// Each client costs two descriptors (both connection ends live in this
/// process), so the fleet curve is clamped by what the kernel grants.
size_t raise_fd_limit() {
  struct rlimit rl{};
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return 1024;
  rl.rlim_cur = rl.rlim_max;
  (void)setrlimit(RLIMIT_NOFILE, &rl);
  (void)getrlimit(RLIMIT_NOFILE, &rl);
  return static_cast<size_t>(rl.rlim_cur);
}

/// Completion sink shared by every in-flight operation of one point.
struct Collector {
  std::mutex mu;
  Samples latency_us;  // from *intended* start, GUARDED_BY(mu) by hand
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> timed_out{0};

  void record(Clock::time_point intended, bool timeout) {
    const double us = std::chrono::duration<double, std::micro>(
                          Clock::now() - intended)
                          .count();
    {
      std::lock_guard<std::mutex> lock(mu);
      latency_us.add(us);
    }
    (timeout ? timed_out : ok).fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t done() const { return ok.load() + timed_out.load(); }
};

struct PointResult {
  uint64_t issued{0};
  uint64_t completed{0};
  uint64_t timed_out{0};
  double msgs_per_sec{0};
  double mbps{0};
  double p50_us{0};
  double p99_us{0};
};

PointResult run_point(size_t fleet, double rate, double duration_s,
                      uint64_t seed) {
  socknet::TcpConfig tcp;
  // 16 KiB receive chunks: a fleet point holds `fleet` connections open at
  // once, and the default 256 KiB chunk would cost 2 GiB of parse buffers
  // at 8k clients. Register replies here are ~200 bytes.
  tcp.options.recv_chunk_bytes = 16 * 1024;
  tcp.options.recv_pool_bytes = 8 * 1024 * 1024;
  socknet::TcpNetwork net(tcp);

  const auto built =
      registers::SystemConfig::builder().n(1).f(0).build_for_bsr();
  const registers::SystemConfig cfg = built.value();

  registers::RegisterServer server(ProcessId::server(0), cfg, &net,
                                   workload::make_value(seed, 0, kValueSize));
  net.add_process(ProcessId::server(0), &server);

  // Every op carries a deadline: one retry, then complete as timed_out.
  // Shed frames (bounded outbox) thus show up in the timeout column.
  registers::ClientOptions copts;
  copts.retry.timeout = 500'000'000;  // 500 ms per attempt
  copts.retry.max_retries = 1;

  std::deque<registers::RegisterClient> clients;
  for (size_t i = 0; i < fleet; ++i) {
    const ProcessId pid = ProcessId::reader(static_cast<uint32_t>(i));
    clients.emplace_back(pid, cfg, &net, copts);
    net.add_process(pid, &clients.back(), /*listen=*/false);
  }
  registers::RegisterClient writer(ProcessId::writer(0), cfg, &net, copts);
  net.add_process(writer.id(), &writer, /*listen=*/false);
  net.start();

  // Warmup: one read per client, issued in bursts, so every connection is
  // dialed and adopted before the measured window opens.
  std::atomic<uint64_t> warm{0};
  for (size_t i = 0; i < fleet; ++i) {
    registers::RegisterClient* c = &clients[i];
    net.post(c->id(), [c, &warm] {
      c->read(0, [&warm](const registers::ReadResult&) {
        warm.fetch_add(1, std::memory_order_relaxed);
      });
    });
    if (i % 512 == 511) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const auto warm_deadline = Clock::now() + std::chrono::seconds(60);
  while (warm.load() < fleet && Clock::now() < warm_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  YcsbWorkload mix(kLoadgenMix, KeyDist::kZipfian, kObjects, seed, kZipfTheta);
  Collector collector;
  uint64_t issued = 0;
  uint64_t writes = 0;

  const auto t0 = Clock::now();
  const auto t_end =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(duration_s));
  while (true) {
    const auto intended =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(static_cast<double>(issued) /
                                               rate));
    if (intended >= t_end) break;
    std::this_thread::sleep_until(intended);  // no-op once we fall behind

    const YcsbOp op = mix.next();
    const auto key = static_cast<uint32_t>(op.key);
    if (op.kind == YcsbOpKind::kUpdate) {
      // SWMR value churn on the zipfian keys, 1% of the op budget.
      net.post(writer.id(), [&writer, &collector, key, intended, seed,
                             w = writes++] {
        writer.write(key, workload::make_value(seed, w + 1, kValueSize),
                     [&collector, intended](const registers::WriteResult& r) {
                       collector.record(intended, r.timed_out);
                     });
      });
    } else {
      registers::RegisterClient* c = &clients[issued % fleet];
      net.post(c->id(), [c, &collector, key, intended] {
        c->read(key, [&collector, intended](const registers::ReadResult& r) {
          collector.record(intended, r.timed_out);
        });
      });
    }
    ++issued;
  }

  // Grace: deadlines guarantee every op resolves within ~1.5 s (two 500 ms
  // attempts plus slack); whatever is still missing after that is counted
  // as timed out by subtraction.
  const auto grace = Clock::now() + std::chrono::seconds(3);
  while (collector.done() < issued && Clock::now() < grace) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  net.stop();

  PointResult out;
  out.issued = issued;
  out.completed = collector.ok.load();
  out.timed_out = issued - out.completed;
  out.msgs_per_sec = static_cast<double>(out.completed) / secs;
  out.mbps = static_cast<double>(out.completed) * kValueSize /
             (secs * 1024.0 * 1024.0);
  std::lock_guard<std::mutex> lock(collector.mu);
  out.p50_us = collector.latency_us.median();
  out.p99_us = collector.latency_us.p99();
  return out;
}

int run_curve(const BenchArgs& args) {
  const size_t fd_limit = raise_fd_limit();
  std::vector<size_t> fleets = args.quick
                                   ? std::vector<size_t>{256, 1024}
                                   : std::vector<size_t>{1000, 2500, 5000, 8000};
  const double rate = args.quick ? 1000.0 : 2000.0;
  const double duration_s =
      args.duration_s > 0 ? args.duration_s : (args.quick ? 2.0 : 5.0);

  FILE* out = nullptr;
  if (!args.json_path.empty()) {
    out = std::fopen(args.json_path.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "bench_loadgen: cannot open %s for writing\n",
                   args.json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"schema\": \"bftreg-bench-transport-v1\",\n");
    std::fprintf(out, "  \"quick\": %s,\n  \"results\": [",
                 args.quick ? "true" : "false");
  }

  // Throwaway point: the first network of the process pays one-time costs
  // (allocator growth, page faults, scheduler warm-up) that show up as a
  // milliseconds-scale p99 on whatever point runs first. Burn them here so
  // the recorded curve measures the steady state.
  (void)run_point(/*fleet=*/64, /*rate=*/500.0, /*duration_s=*/0.5, args.seed);

  std::fprintf(stderr, "%-8s %10s %12s %10s %10s %10s\n", "clients", "issued",
               "msgs/s", "p50 us", "p99 us", "timeouts");
  bool first = true;
  int failures = 0;
  for (const size_t fleet : fleets) {
    // Two fds per client (both connection ends are in-process) plus loop,
    // listener, and wake descriptors.
    if (2 * fleet + 64 > fd_limit) {
      std::fprintf(stderr,
                   "%-8zu SKIPPED: needs %zu fds, RLIMIT_NOFILE grants %zu\n",
                   fleet, 2 * fleet + 64, fd_limit);
      continue;
    }
    const PointResult r = run_point(fleet, rate, duration_s, args.seed);
    // An unfinished curve point is a transport failure, not noise: with
    // deadlines on every op, >10% losses means the data plane collapsed.
    if (r.completed < r.issued - r.issued / 10) ++failures;
    std::fprintf(stderr, "%-8zu %10llu %12.0f %10.0f %10.0f %10llu\n", fleet,
                 static_cast<unsigned long long>(r.issued), r.msgs_per_sec,
                 r.p50_us, r.p99_us,
                 static_cast<unsigned long long>(r.timed_out));
    if (out) {
      std::fprintf(out,
                   "%s\n    {\"transport\": \"loadgen\", \"size\": %zu, "
                   "\"fanin\": %zu, \"msgs_per_sec\": %.0f, \"mbps\": %.1f, "
                   "\"p50_us\": %.0f, \"p99_us\": %.0f}",
                   first ? "" : ",", kValueSize, fleet, r.msgs_per_sec, r.mbps,
                   r.p50_us, r.p99_us);
      first = false;
    }
  }
  if (out) {
    std::fprintf(out, "\n  ]\n}\n");
    std::fclose(out);
    std::fprintf(stderr, "bench_loadgen: wrote %s\n", args.json_path.c_str());
  }
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace bftreg::bench

int main(int argc, char** argv) {
  const auto args = bftreg::bench::BenchArgs::parse(argc, argv);
  if (!args) return 2;
  return bftreg::bench::run_curve(*args);
}
