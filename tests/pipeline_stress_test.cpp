// TSan-focused stress for the multiplexing client on the wall-clock
// runtime: one RegisterClient on ThreadNetwork sustaining 64+ concurrent
// operations across 8 objects while timers (deadline retransmissions) race
// message deliveries, plus application threads hammering the blocking
// facade concurrently. Labeled `slow`: the sanitizer CI jobs include it
// (`ctest --preset tsan`), quick local runs skip it (`ctest -LE slow`).
//
// The assertions are deliberately weak (completion counts, values from the
// written set); the real oracle is ThreadSanitizer observing the
// interleavings between the scheduler thread, mailbox threads, timer
// dispatch, and the blocking callers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/delay.h"
#include "registers/registers.h"
#include "runtime/thread_network.h"

namespace bftreg::registers {
namespace {

Bytes val(const std::string& s) { return Bytes(s.begin(), s.end()); }

class PipelineStress : public ::testing::Test {
 protected:
  static constexpr uint32_t kObjects = 8;

  PipelineStress() {
    config_ = SystemConfig::builder().n(5).f(1).build_for_bsr().value();
    runtime::RuntimeConfig rc;
    rc.seed = 13;
    rc.delay = std::make_unique<net::UniformDelay>(10'000, 200'000);  // 10-200us
    net_ = std::make_unique<runtime::ThreadNetwork>(std::move(rc));
    for (uint32_t i = 0; i < config_.n; ++i) {
      servers_.push_back(std::make_unique<RegisterServer>(
          ProcessId::server(i), config_, net_.get(), Bytes{}));
      net_->add_process(ProcessId::server(i), servers_.back().get());
    }
    // Tight deadline relative to the delay model: some attempts WILL miss
    // it, so timer retransmissions genuinely race live deliveries.
    ClientOptions opts;
    opts.retry.timeout = 2'000'000;  // 2ms
    opts.retry.max_retries = 5;
    client_ = std::make_unique<RegisterClient>(ProcessId::writer(0), config_,
                                               net_.get(), opts);
    net_->add_process(client_->id(), client_.get());
    net_->start();
  }

  ~PipelineStress() override { net_->stop(); }

  SystemConfig config_;
  std::unique_ptr<runtime::ThreadNetwork> net_;
  std::vector<std::unique_ptr<RegisterServer>> servers_;
  std::unique_ptr<RegisterClient> client_;
};

TEST_F(PipelineStress, SixtyFourInFlightOpsUnderRealThreads) {
  constexpr int kWaves = 5;
  constexpr int kOpsPerWave = 64;
  std::atomic<int> completed{0};
  std::atomic<int> timed_out{0};

  for (int wave = 0; wave < kWaves; ++wave) {
    net_->post(client_->id(), [&, wave] {
      for (int k = 0; k < kOpsPerWave / 2; ++k) {
        const uint32_t object = static_cast<uint32_t>(k) % kObjects;
        client_->write(object,
                       val("w" + std::to_string(wave) + "-" + std::to_string(k)),
                       [&](const WriteResult& w) {
                         if (w.timed_out) ++timed_out;
                         ++completed;
                       });
        client_->read(object, [&](const ReadResult& r) {
          if (r.timed_out) ++timed_out;
          ++completed;
        });
      }
    });
    // Overlap waves: don't wait for the previous one to finish.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (completed.load() < kWaves * kOpsPerWave &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Every operation completes -- by quorum or by deadline fallback -- and
  // the client table drains.
  EXPECT_EQ(completed.load(), kWaves * kOpsPerWave);
  EXPECT_EQ(client_->in_flight(), 0u);
}

TEST_F(PipelineStress, BlockingFacadeFromManyApplicationThreads) {
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 50;
  std::atomic<int> ok{0};

  std::vector<std::thread> apps;
  for (int t = 0; t < kThreads; ++t) {
    apps.emplace_back([&, t] {
      BlockingRegisterClient kv(*client_);
      const uint32_t object = static_cast<uint32_t>(t) % kObjects;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string v = "t" + std::to_string(t) + "-" + std::to_string(i);
        const auto w = kv.write(object, val(v));
        const auto r = kv.read(object);
        // Concurrent writers on the object: any thread's value (or, very
        // early, v0) is legal; freshness of OUR write implies a tag at
        // least as large as the one we wrote.
        if (!w.timed_out && !r.timed_out && !(r.tag < w.tag)) ++ok;
      }
    });
  }
  for (auto& t : apps) t.join();
  EXPECT_GT(ok.load(), 0);
  EXPECT_EQ(client_->in_flight(), 0u);
}

}  // namespace
}  // namespace bftreg::registers
