#include "registers/bsr_writer.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"

namespace bftreg::registers {

BsrWriter::BsrWriter(ProcessId self, SystemConfig config,
                     net::Transport* transport, uint32_t object)
    : self_(self),
      config_(std::move(config)),
      transport_(transport),
      object_(object),
      responded_(config_.quorum()) {}

void BsrWriter::send_to_all_servers(const RegisterMessage& msg) {
  const Bytes payload = msg.encode();
  for (uint32_t i = 0; i < config_.n; ++i) {
    transport_->send(self_, ProcessId::server(i), payload);
  }
}

void BsrWriter::send_to_server(uint32_t index, const RegisterMessage& msg) {
  transport_->send(self_, ProcessId::server(index), msg.encode());
}

void BsrWriter::start_write(Bytes value, Callback callback) {
  assert(phase_ == Phase::kIdle && "at most one operation per client");
  value_ = std::move(value);
  callback_ = std::move(callback);
  invoked_at_ = transport_->now();
  ++op_id_;
  phase_ = Phase::kGetTag;
  responded_.reset();
  tags_.clear();

  RegisterMessage query;
  query.type = MsgType::kQueryTag;
  query.op_id = op_id_;
  query.object = object_;
  send_to_all_servers(query);
}

void BsrWriter::on_message(const net::Envelope& env) {
  if (!env.from.is_server()) return;
  auto msg = RegisterMessage::parse(env.payload);
  if (!msg || msg->op_id != op_id_ || msg->object != object_) return;
  switch (msg->type) {
    case MsgType::kTagResp:
      on_tag_resp(env.from, *msg);
      break;
    case MsgType::kAck:
      on_ack(env.from, *msg);
      break;
    default:
      break;
  }
}

void BsrWriter::on_tag_resp(const ProcessId& from, const RegisterMessage& msg) {
  if (phase_ != Phase::kGetTag) return;
  if (!responded_.add(from)) return;  // Byzantine double-reply
  tags_.push_back(msg.tag);
  if (!responded_.reached()) return;

  // Fig. 1 line 4: the (f+1)-th highest among the n-f collected tags.
  std::sort(tags_.begin(), tags_.end(), std::greater<>());
  const Tag base = tags_[std::min(config_.tag_rank(), tags_.size()) - 1];
  write_tag_ = Tag{base.num + 1, self_};

  phase_ = Phase::kPutData;
  responded_.reset();
  send_put_data(write_tag_);
}

void BsrWriter::send_put_data(const Tag& tag) {
  RegisterMessage put;
  put.type = MsgType::kPutData;
  put.op_id = op_id_;
  put.object = object_;
  put.tag = tag;
  put.value = value_;
  send_to_all_servers(put);
}

void BsrWriter::on_ack(const ProcessId& from, const RegisterMessage& msg) {
  if (phase_ != Phase::kPutData) return;
  if (msg.tag != write_tag_) return;  // ack for something we did not send
  if (!responded_.add(from)) return;
  if (!responded_.reached()) return;
  finish();
}

void BsrWriter::finish() {
  phase_ = Phase::kIdle;
  ++writes_completed_;
  WriteResult result;
  result.tag = write_tag_;
  result.invoked_at = invoked_at_;
  result.completed_at = transport_->now();
  result.rounds = 2;
  // Detach the callback before invoking: it may start the next write.
  Callback cb = std::move(callback_);
  callback_ = nullptr;
  if (cb) cb(result);
}

}  // namespace bftreg::registers
