// Bulk GF(2^8) region operations: the codec hot path.
//
// The byte-at-a-time log/antilog multiply in gf256.h is fine for the
// Berlekamp-Welch slow path, but encode and the erasure fast path spend
// all their time computing dst ^= c * src over whole coded elements. This
// header provides that as a region primitive with three kernel tiers:
//
//   kScalar  portable 4-bit split-table: two 16-entry tables per constant
//            (low nibble / high nibble products), two loads + one xor per
//            byte, no data-dependent branches.
//   kSwar    portable 64-bit SWAR: eight bytes per step via the classic
//            shift-and-reduce carryless multiply (reduction by 0x11D),
//            branch-free in the constant's bits.
//   kSsse3   SSSE3 `pshufb`: the split tables ARE shuffle tables, so one
//            16-byte step is two shuffles + two ands + one xor (the ISA-L
//            technique).
//   kAvx2    the same kernel widened to 32 bytes with `vpshufb`.
//
// Dispatch picks the widest kernel the CPU supports at first use; the
// BFTREG_GF_KERNEL environment variable (auto|scalar|swar|ssse3|avx2)
// overrides it so CI can exercise every tier, and force_kernel() does the
// same programmatically for differential tests. All kernels produce
// bit-identical output -- GF arithmetic is exact.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bftreg::codec::gf {

enum class RegionKernel : uint8_t {
  kScalar = 0,
  kSwar = 1,
  kSsse3 = 2,
  kAvx2 = 3,
};

/// "scalar" / "swar" / "ssse3" / "avx2".
const char* kernel_name(RegionKernel k);

/// True iff this CPU can run kernel `k`.
bool kernel_available(RegionKernel k);

/// The kernel region ops currently dispatch to (after the BFTREG_GF_KERNEL
/// override and any force_kernel() call).
RegionKernel active_kernel();

/// Forces dispatch to `k` (testing / CI). Returns false and leaves the
/// selection unchanged if `k` is not available on this CPU. Not
/// synchronized with concurrent region calls -- call it from single-threaded
/// setup code only.
bool force_kernel(RegionKernel k);

/// Re-runs auto-selection (CPU detection + BFTREG_GF_KERNEL).
void reset_kernel();

/// dst[i] = c * src[i] for i in [0, len). dst == src is allowed; partial
/// overlap is not.
void mul_region(uint8_t* dst, const uint8_t* src, uint8_t c, size_t len);

/// dst[i] ^= c * src[i] for i in [0, len). dst and src must not overlap.
void mul_add_region(uint8_t* dst, const uint8_t* src, uint8_t c, size_t len);

/// dst[i] ^= src[i] (the c == 1 special case; addition in GF(2^8)).
void add_region(uint8_t* dst, const uint8_t* src, size_t len);

/// Runs the op through one specific kernel regardless of dispatch state
/// (differential testing). Precondition: kernel_available(k).
void mul_region_as(RegionKernel k, uint8_t* dst, const uint8_t* src, uint8_t c,
                   size_t len);
void mul_add_region_as(RegionKernel k, uint8_t* dst, const uint8_t* src,
                       uint8_t c, size_t len);

}  // namespace bftreg::codec::gf
