// Tests for the thread-per-process real-time transport.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "net/transport.h"
#include "runtime/thread_network.h"

namespace bftreg::runtime {
namespace {

class Counter final : public net::IProcess {
 public:
  explicit Counter(ProcessId self, net::Transport* transport = nullptr)
      : self_(self), transport_(transport) {}

  void on_start() override { started_.store(true); }

  void on_message(const net::Envelope& env) override {
    count_.fetch_add(1);
    last_payload_size_.store(env.payload.size());
    if (transport_ != nullptr && !env.payload.empty() && env.payload[0] == 'P') {
      transport_->send(self_, env.from, Bytes{'R'});
    }
  }

  bool started() const { return started_.load(); }
  int count() const { return count_.load(); }
  size_t last_payload_size() const { return last_payload_size_.load(); }

 private:
  ProcessId self_;
  net::Transport* transport_;
  std::atomic<bool> started_{false};
  std::atomic<int> count_{0};
  std::atomic<size_t> last_payload_size_{0};
};

bool wait_for(const std::function<bool()>& pred, int timeout_ms = 3000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

TEST(ThreadNetworkTest, StartsProcessesAndDeliversMessages) {
  ThreadNetwork net(RuntimeConfig{});
  Counter a(ProcessId::writer(0));
  Counter b(ProcessId::server(0));
  net.add_process(ProcessId::writer(0), &a);
  net.add_process(ProcessId::server(0), &b);
  net.start();

  EXPECT_TRUE(wait_for([&] { return a.started() && b.started(); }));
  net.send(ProcessId::writer(0), ProcessId::server(0), Bytes(32, 7));
  EXPECT_TRUE(wait_for([&] { return b.count() == 1; }));
  EXPECT_EQ(b.last_payload_size(), 32u);
  net.stop();
}

TEST(ThreadNetworkTest, RequestReplyAcrossThreads) {
  ThreadNetwork net(RuntimeConfig{});
  Counter client(ProcessId::reader(0), &net);
  Counter server(ProcessId::server(0), &net);
  net.add_process(ProcessId::reader(0), &client);
  net.add_process(ProcessId::server(0), &server);
  net.start();

  net.send(ProcessId::reader(0), ProcessId::server(0), Bytes{'P'});
  EXPECT_TRUE(wait_for([&] { return client.count() == 1; }));
  net.stop();
}

TEST(ThreadNetworkTest, ManyMessagesAllDelivered) {
  ThreadNetwork net(RuntimeConfig{});
  Counter dst(ProcessId::server(0));
  net.add_process(ProcessId::server(0), &dst);
  net.start();
  constexpr int kCount = 500;
  for (int i = 0; i < kCount; ++i) {
    net.send(ProcessId::writer(0), ProcessId::server(0), Bytes{1});
  }
  EXPECT_TRUE(wait_for([&] { return dst.count() == kCount; }));
  net.stop();
  EXPECT_EQ(net.metrics().snapshot().messages_delivered,
            static_cast<uint64_t>(kCount));
}

TEST(ThreadNetworkTest, DelayedDeliveryArrivesLater) {
  RuntimeConfig cfg;
  cfg.delay = std::make_unique<net::FixedDelay>(20'000'000);  // 20 ms
  ThreadNetwork net(std::move(cfg));
  Counter dst(ProcessId::server(0));
  net.add_process(ProcessId::server(0), &dst);
  net.start();

  const auto t0 = std::chrono::steady_clock::now();
  net.send(ProcessId::writer(0), ProcessId::server(0), Bytes{1});
  EXPECT_TRUE(wait_for([&] { return dst.count() == 1; }));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_GE(elapsed, 15);
  net.stop();
}

TEST(ThreadNetworkTest, CrashedProcessStopsReceivingAndSending) {
  ThreadNetwork net(RuntimeConfig{});
  Counter a(ProcessId::server(0));
  Counter b(ProcessId::server(1));
  net.add_process(ProcessId::server(0), &a);
  net.add_process(ProcessId::server(1), &b);
  net.start();

  net.mark_crashed(ProcessId::server(0));
  net.send(ProcessId::writer(0), ProcessId::server(0), Bytes{1});
  net.send(ProcessId::server(0), ProcessId::server(1), Bytes{1});
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(a.count(), 0);
  EXPECT_EQ(b.count(), 0);
  net.stop();
}

TEST(ThreadNetworkTest, BlockingInvokerCompletesViaCallback) {
  ThreadNetwork net(RuntimeConfig{});
  Counter a(ProcessId::writer(0));
  net.add_process(ProcessId::writer(0), &a);
  net.start();

  BlockingInvoker invoker(net);
  std::atomic<bool> ran{false};
  invoker.run(ProcessId::writer(0), [&](std::function<void()> done) {
    ran.store(true);
    done();
  });
  EXPECT_TRUE(ran.load());
  net.stop();
}

TEST(ThreadNetworkTest, StopIsIdempotentAndJoinsCleanly) {
  ThreadNetwork net(RuntimeConfig{});
  Counter a(ProcessId::server(0));
  net.add_process(ProcessId::server(0), &a);
  net.start();
  net.stop();
  net.stop();  // no deadlock, no crash
}

}  // namespace
}  // namespace bftreg::runtime
