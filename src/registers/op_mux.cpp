#include "registers/op_mux.h"

#include <cassert>

namespace bftreg::registers {

// --- PendingOp services -----------------------------------------------------

const SystemConfig& PendingOp::config() const { return mux_->config(); }

net::Transport* PendingOp::transport() const { return mux_->transport(); }

const ProcessId& PendingOp::self() const { return mux_->id(); }

void PendingOp::send_to_all_servers(RegisterMessage& msg) {
  // Stamp the epoch this attempt runs under: servers fold it in (so the
  // cluster converges on the newest view even without announces), and the
  // mux compares it against later views to find straddling ops.
  view_epoch_ = mux_->view_epoch();
  msg.epoch = view_epoch_;
  const Bytes payload = msg.encode();
  for (const uint32_t i : mux_->view().members) {
    transport()->send(self(), ProcessId::server(i), payload);
  }
}

void PendingOp::send_to_server(uint32_t index, RegisterMessage& msg) {
  view_epoch_ = mux_->view_epoch();
  msg.epoch = view_epoch_;
  transport()->send(self(), ProcessId::server(index), msg.encode());
}

void PendingOp::fill_result(OpResult& out, int rounds) const {
  out.invoked_at = invoked_at_;
  out.completed_at = transport()->now();
  out.rounds = rounds;
  out.timed_out = timed_out_;
  out.retries = retries_;
}

std::unique_ptr<PendingOp> PendingOp::detach_self() {
  return mux_->detach(op_id_);
}

// --- OpMux ------------------------------------------------------------------

OpMux::OpMux(ProcessId self, SystemConfig config, net::Transport* transport)
    : self_(self),
      config_(std::move(config)),
      transport_(transport),
      alive_(std::make_shared<std::atomic<bool>>(true)) {}

OpMux::~OpMux() { alive_->store(false); }

uint64_t OpMux::allocate_op_id(OpKind kind, uint32_t object) {
  // Namespace hash over (protocol kind, object, client id): operations of
  // different protocols, objects, or clients draw from disjoint id spaces,
  // so a response can only ever match the operation that requested it.
  // Hash a hand-packed byte string, NOT a struct image: struct padding
  // bytes are indeterminate and would make the "same" namespace hash
  // differently on every call.
  uint8_t ns[10];
  ns[0] = static_cast<uint8_t>(kind);
  ns[1] = static_cast<uint8_t>(self_.role);
  for (int i = 0; i < 4; ++i) {
    ns[2 + i] = static_cast<uint8_t>(self_.index >> (8 * i));
    ns[6 + i] = static_cast<uint8_t>(object >> (8 * i));
  }
  uint32_t h = static_cast<uint32_t>(fnv1a64(ns, sizeof(ns)) >> 16);
  // Distinct namespaces can still collide in 32 bits; the sequence half
  // keeps live ids unique, and the loop below closes the (astronomically
  // rare) case of a collision between two live operations.
  uint64_t id;
  do {
    uint32_t& seq = next_seq_[h];
    ++seq;
    if (seq == 0) ++seq;  // wrapped after 2^32 ops in one namespace
    id = (static_cast<uint64_t>(h) << 32) | seq;
  } while (ops_.count(id) > 0);
  return id;
}

uint64_t OpMux::start(std::unique_ptr<PendingOp> op, OpKind kind,
                      uint32_t object, const RetryPolicy& policy) {
  assert(op != nullptr);
  PendingOp* raw = op.get();
  raw->mux_ = this;
  raw->object_ = object;
  raw->op_id_ = allocate_op_id(kind, object);
  raw->invoked_at_ = transport_->now();
  raw->policy_ = policy;
  raw->cur_timeout_ = policy.timeout;
  ops_.emplace(raw->op_id_, std::move(op));
  raw->send_request();
  if (policy.timeout > 0) arm_timer(raw);
  return raw->op_id_;
}

void OpMux::on_message(const net::Envelope& env) {
  if (!env.from.is_server()) return;
  auto msg = RegisterMessage::parse(env.payload);
  if (!msg) return;
  // View tracking first: every server reply piggybacks its epoch, and a
  // VIEW-ANNOUNCE (op_id 0, matching no in-flight op) is pure view signal.
  if (view_.observe(*msg)) on_view_change();
  auto it = ops_.find(msg->op_id);
  if (it == ops_.end()) return;  // straggler or fabrication: no such op
  // The handler may complete the op (detach + destroy); `it` must not be
  // touched afterwards.
  it->second->on_response(env.from, std::move(*msg));
}

void OpMux::on_view_change() {
  // "Abort and retry" for ops straddling the epoch boundary: re-issue each
  // one under its SAME op id. Replies already collected stay valid (the
  // quorum is counted over the full universe), and the fresh attempt
  // reaches the new view's members -- in particular a rejoined server the
  // old attempt's sends never targeted.
  const uint64_t epoch = view_.epoch();
  for (auto& [id, op] : ops_) {
    if (op->view_epoch_ >= epoch) continue;
    ++view_retries_;
    op->retransmit();  // updates op->view_epoch_ via send_to_*
  }
}

std::unique_ptr<PendingOp> OpMux::detach(uint64_t op_id) {
  auto it = ops_.find(op_id);
  assert(it != ops_.end() && "detach of an op not in flight");
  std::unique_ptr<PendingOp> op = std::move(it->second);
  ops_.erase(it);
  return op;
}

void OpMux::arm_timer(PendingOp* op) {
  const uint64_t gen = ++op->timer_gen_;
  transport_->post_after(
      self_, op->cur_timeout_,
      [this, alive = alive_, id = op->op_id_, gen] {
        if (!alive->load()) return;
        on_timer(id, gen);
      });
}

void OpMux::on_timer(uint64_t op_id, uint64_t gen) {
  auto it = ops_.find(op_id);
  if (it == ops_.end()) return;  // completed before the deadline
  PendingOp* op = it->second.get();
  if (op->timer_gen_ != gen) return;  // a newer attempt superseded this timer
  if (op->retries_ < op->policy_.max_retries) {
    ++op->retries_;
    ++retransmits_;
    const double backoff = op->policy_.backoff < 1.0 ? 1.0 : op->policy_.backoff;
    op->cur_timeout_ =
        static_cast<TimeNs>(static_cast<double>(op->cur_timeout_) * backoff);
    // Same op id on the wire: responses to the earlier attempt still count.
    op->retransmit();
    arm_timer(op);
    return;
  }
  ++timeouts_;
  op->timed_out_ = true;
  // on_timeout() completes the op (detach + callback); it must be the last
  // touch of `op`.
  op->on_timeout();
}

}  // namespace bftreg::registers
