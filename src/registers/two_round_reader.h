// Two-round regular read: second regularity fix of Section III-C.
//
// Phase get-tag: QUERY-TAG-HISTORY to all servers; wait for n-f
//   TAG-HISTORY-RESPs; the candidate tags are those present in at least
//   f+1 histories (so at least one honest server vouches the tag belongs
//   to a real write -- a fabricated Byzantine tag can collect at most f).
//   Choose the largest candidate t*.
// Phase get-data: QUERY-DATA-AT(t*) to all servers; complete when f+1
//   servers return the identical pair (t*, v); return v.
//
// Liveness note (documented deviation): servers answer QUERY-DATA-AT
// lazily -- if they have not yet received t*'s PUT-DATA they reply
// DATA-AT-MISSING and answer again once it arrives (reliable channels
// guarantee it will, since the writer multicasts PUT-DATA to all n
// servers). The single schedule this does not cover is a writer crashing
// *mid-multicast* after reaching f+1 servers but before the message to
// some honest server was placed in its channel; the paper's own Remark 1
// identifies exactly this all-or-none gap as the price of dropping
// reliable broadcast, and defers the full treatment to a technical
// report. bench_regularity exercises the non-crashing schedules.
#pragma once

#include <functional>
#include <map>
#include <set>

#include "net/transport.h"
#include "registers/bsr_reader.h"
#include "registers/config.h"
#include "registers/messages.h"
#include "registers/quorum.h"

namespace bftreg::registers {

class TwoRoundReader final : public net::IProcess {
 public:
  using Callback = std::function<void(const ReadResult&)>;

  TwoRoundReader(ProcessId self, SystemConfig config, net::Transport* transport,
                 uint32_t object = 0);

  void start_read(Callback callback);
  void on_message(const net::Envelope& env) override;

  bool busy() const { return phase_ != Phase::kIdle; }
  const ProcessId& id() const { return self_; }
  const Tag& local_tag() const { return local_.tag; }

 private:
  enum class Phase { kIdle, kGetTag, kGetData };

  void on_tag_history(const ProcessId& from, const RegisterMessage& msg);
  void on_data_at(const ProcessId& from, const RegisterMessage& msg);
  void begin_get_data();
  void finish(bool fresh);

  const ProcessId self_;
  const SystemConfig config_;
  net::Transport* const transport_;
  const uint32_t object_;

  TaggedValue local_;

  Phase phase_{Phase::kIdle};
  uint64_t op_id_{0};
  QuorumTracker responded_;
  /// Phase 1: tag -> distinct servers listing it.
  std::map<Tag, std::set<ProcessId>> tag_votes_;
  Tag target_{};
  /// Phase 2: value -> distinct servers returning (target_, value).
  std::map<Bytes, std::set<ProcessId>> value_votes_;
  Callback callback_;
  TimeNs invoked_at_{0};
};

}  // namespace bftreg::registers
