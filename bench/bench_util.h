// Shared helpers for the experiment binaries (E1-E8 + ablations).
//
// Each bench binary regenerates one quantitative claim of the paper (see
// DESIGN.md §5 for the experiment index and EXPERIMENTS.md for recorded
// results). Helpers here build clusters, drive standard workloads, and
// collect virtual-time latency samples.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <optional>
#include <string>

#include "common/stats.h"
#include "harness/sim_cluster.h"
#include "workload/workload.h"

namespace bftreg::bench {

/// The shared command-line surface of the bench binaries. Every binary
/// accepts the same four flags with the same spellings and semantics --
/// CI and tools/bench_regress drive all of them identically:
///
///   --json=PATH       machine-readable snapshot ("" = table only)
///   --quick           CI-sized budgets (each binary documents its scale)
///   --seed=N          workload/delay seed (default 1)
///   --duration=SECS   per-point measurement window, for binaries that
///                     measure for a fixed time instead of a fixed count
///
/// Binary-specific flags go through the `extra` callback: it sees each
/// unrecognized argument and returns whether it consumed it. parse()
/// returns nullopt (after printing usage) on anything left over.
struct BenchArgs {
  std::string json_path;
  bool quick{false};
  uint64_t seed{1};
  double duration_s{0};

  using ExtraFlag = std::function<bool(const char*)>;

  static std::optional<BenchArgs> parse(int argc, char** argv,
                                        const char* extra_usage = "",
                                        const ExtraFlag& extra = {}) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--json=", 7) == 0) {
        args.json_path = a + 7;
      } else if (std::strcmp(a, "--quick") == 0) {
        args.quick = true;
      } else if (std::strncmp(a, "--seed=", 7) == 0) {
        args.seed = std::strtoull(a + 7, nullptr, 10);
      } else if (std::strncmp(a, "--duration=", 11) == 0) {
        args.duration_s = std::strtod(a + 11, nullptr);
      } else if (extra && extra(a)) {
        // consumed by the binary
      } else {
        std::fprintf(stderr,
                     "usage: %s [--json=PATH] [--quick] [--seed=N] "
                     "[--duration=SECS]%s%s\n",
                     argv[0], *extra_usage ? " " : "", extra_usage);
        return std::nullopt;
      }
    }
    return args;
  }
};

inline harness::ClusterOptions make_options(harness::Protocol protocol, size_t n,
                                            size_t f, uint64_t seed,
                                            TimeNs delay_lo, TimeNs delay_hi) {
  harness::ClusterOptions o;
  o.protocol = protocol;
  o.config.n = n;
  o.config.f = f;
  o.num_writers = 2;
  o.num_readers = 2;
  o.seed = seed;
  o.delay_lo = delay_lo;
  o.delay_hi = delay_hi;
  return o;
}

struct LatencySamples {
  Samples reads;
  Samples writes;
  double read_rounds_mode{0};  // latency / one-way delay, fixed-delay runs
};

/// Quiescent workload: alternating writes and reads, nothing concurrent.
/// With delay_lo == delay_hi the read latency divided by the delay is the
/// protocol's exact round count.
inline LatencySamples run_quiescent(harness::Protocol protocol, size_t n, size_t f,
                                    size_t ops, uint64_t seed, TimeNs delay_lo,
                                    TimeNs delay_hi, size_t value_size = 64) {
  harness::SimCluster cluster(
      make_options(protocol, n, f, seed, delay_lo, delay_hi));
  LatencySamples out;
  for (size_t i = 0; i < ops; ++i) {
    const auto w = cluster.write(0, workload::make_value(seed, i, value_size));
    out.writes.add(static_cast<double>(w.completed_at - w.invoked_at));
    const auto r = cluster.read(0);
    out.reads.add(static_cast<double>(r.completed_at - r.invoked_at));
  }
  if (delay_lo == delay_hi && delay_lo > 0) {
    out.read_rounds_mode = out.reads.median() / (2.0 * static_cast<double>(delay_lo));
  }
  return out;
}

/// Reads racing an in-flight write. The read is launched `offset` after
/// the write starts, so by sweeping the offset a caller can hit every
/// phase of the write's dissemination (get-tag, put-data in flight,
/// servers split old/new) and find the protocol's worst read-arrival
/// phase.
inline LatencySamples run_contended(harness::Protocol protocol, size_t n, size_t f,
                                    size_t ops, uint64_t seed, TimeNs delay_lo,
                                    TimeNs delay_hi, TimeNs offset,
                                    size_t value_size = 64) {
  harness::SimCluster cluster(
      make_options(protocol, n, f, seed, delay_lo, delay_hi));
  LatencySamples out;
  uint64_t counter = 0;
  for (size_t i = 0; i < ops; ++i) {
    const uint64_t wid =
        cluster.start_write(0, workload::make_value(seed, counter++, value_size));
    cluster.sim().run_until_time(cluster.sim().now() + offset);
    const uint64_t rid = cluster.start_read(0);
    cluster.await(rid);
    const auto& r = cluster.read_result(rid);
    out.reads.add(static_cast<double>(r.completed_at - r.invoked_at));
    cluster.await(wid);
    const auto& w = cluster.write_result(wid);
    out.writes.add(static_cast<double>(w.completed_at - w.invoked_at));
  }
  return out;
}

/// Worst-phase contended read latency: sweeps the read's arrival offset
/// across the whole write (0..8 mean one-way delays) and returns the
/// samples of the worst offset by median.
inline LatencySamples run_contended_worst(harness::Protocol protocol, size_t n,
                                          size_t f, size_t ops_per_offset,
                                          uint64_t seed, TimeNs delay_lo,
                                          TimeNs delay_hi) {
  const TimeNs mean = (delay_lo + delay_hi) / 2;
  LatencySamples worst;
  for (int phase = 0; phase <= 16; ++phase) {
    auto s = run_contended(protocol, n, f, ops_per_offset, seed + phase,
                           delay_lo, delay_hi, mean * phase / 2);
    if (worst.reads.count() == 0 || s.reads.median() > worst.reads.median()) {
      worst = std::move(s);
    }
  }
  return worst;
}

inline std::string fmt_us(double ns) { return TextTable::fmt(ns / 1000.0, 1); }

}  // namespace bftreg::bench
