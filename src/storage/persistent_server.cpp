#include "storage/persistent_server.h"

namespace bftreg::storage {

PersistentRegisterServer::PersistentRegisterServer(ProcessId self,
                                                   registers::SystemConfig config,
                                                   net::Transport* transport,
                                                   Bytes initial,
                                                   std::string wal_path)
    : RegisterServer(self, std::move(config), transport, std::move(initial)),
      wal_(std::move(wal_path)) {
  const ReplayResult replayed = WriteAheadLog::replay(wal_.path());
  truncated_ = replayed.truncated_bytes;
  recovering_ = true;
  for (const WalRecord& r : replayed.records) {
    if (RegisterServer::apply_put(r.object, r.tag, r.value)) ++recovered_;
  }
  recovering_ = false;
}

bool PersistentRegisterServer::apply_put(uint32_t object, const Tag& tag,
                                         Bytes value) {
  // Probe-then-log-then-apply would double the map lookups; instead apply
  // first and log on success. Both orders are equivalent here: the ACK is
  // only sent after this handler returns, so a crash mid-handler loses the
  // ACK along with (at worst) the log record.
  if (recovering_) {
    // Replayed records are never re-logged; skip the log-copy entirely so
    // recovery moves each (possibly large) coded element exactly once.
    return RegisterServer::apply_put(object, tag, std::move(value));
  }
  Bytes copy = value;  // keep bytes for the log; base consumes `value`
  const bool added = RegisterServer::apply_put(object, tag, std::move(value));
  if (added) {
    wal_.append(WalRecord{object, tag, std::move(copy)});
  }
  return added;
}

void PersistentRegisterServer::compact() {
  std::vector<WalRecord> live;
  for (const uint32_t object : object_ids()) {
    for (const auto& [tag, value] : store(object)) {
      if (tag.is_initial()) continue;  // seeded, not logged
      live.push_back(WalRecord{object, tag, value});
    }
  }
  wal_.compact(live);
}

}  // namespace bftreg::storage
