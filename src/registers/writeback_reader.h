// Write-back reader: BSR upgraded to atomic reads (library extension).
//
// The paper stops at safety/regularity because *fast* MWMR atomicity is
// impossible (Georgiou et al. [13], cited in Section VI) -- but slow
// atomicity is not. This reader applies the classic ABD write-back idea
// to BSR: phase one is Fig. 2's witness-verified get-data; phase two
// writes the chosen (tag, value) pair back to n-f servers before
// returning. The write-back forces every subsequent read's quorum to
// intersect it in >= f+1 honest servers, so no later read can return an
// older write: cross-reader new/old inversion -- the one freedom
// regularity still allowed (see checker/consistency.h) -- is gone.
//
// Costs exactly what the impossibility theorem says it must: the read is
// two rounds, not one. bench_read_latency and bench_regularity put the
// price next to what it buys.
//
// Low-level single-operation client; protocol logic in WriteBackReadOp
// (protocol_ops.h), multiplexed flavor in RegisterClient (client.h).
#pragma once

#include <functional>

#include "net/transport.h"
#include "registers/config.h"
#include "registers/op_mux.h"
#include "registers/protocol_ops.h"
#include "registers/results.h"

namespace bftreg::registers {

class WriteBackReader final : public net::IProcess {
 public:
  using Callback = std::function<void(const ReadResult&)>;

  WriteBackReader(ProcessId self, SystemConfig config, net::Transport* transport,
                  uint32_t object = 0);

  void start_read(Callback callback);
  void on_message(const net::Envelope& env) override { mux_.on_message(env); }

  bool busy() const { return !mux_.idle(); }
  const ProcessId& id() const { return mux_.id(); }
  const Tag& local_tag() const { return state_.local.tag; }

 private:
  OpMux mux_;
  const uint32_t object_;
  LocalState state_;
};

}  // namespace bftreg::registers
