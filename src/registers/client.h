// RegisterClient: the high-level client API of the register library.
//
// One object of this class is a full protocol client: pick a protocol
// variant, point it at the server set, and issue reads/writes against any
// number of shared variables -- concurrently. Where the low-level classes
// (BsrReader, BsrWriter, ...) enforce the paper's one-operation-per-client
// well-formedness, RegisterClient runs every operation through an
// operation multiplexer (op_mux.h), so a single client sustains
// dozens-to-hundreds of in-flight operations across many objects; each
// operation keeps its own quorum/witness tallies, so the paper's
// per-operation guarantees are untouched (see protocol_ops.h).
//
// Deadlines: construct with a RetryPolicy to bound every operation --
// missed deadlines retransmit under the same op id (stragglers still
// count) with multiplicative backoff, and an exhausted retry budget
// completes the operation with its protocol's fallback state, flagged
// result.timed_out. The default policy never times out, matching the
// paper's asynchronous model.
//
//   auto config = SystemConfig::builder().n(5).f(1).build_for_bsr();
//   RegisterClient client(ProcessId::reader(0), config.value(), &net);
//   net.add_process(client.id(), &client);
//   ...
//   client.write(7, value, [](const WriteResult& r) { ... });
//   client.read(7, [](const ReadResult& r) { ... });
//   client.read_batch({1, 2, 3}, [](const BatchReadResult& r) { ... });
//
// All methods must run in the client's execution context (Transport::post
// or a handler), like every protocol object in this repo.
#pragma once

#include <cassert>
#include <functional>
#include <initializer_list>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "codec/mds_code.h"
#include "net/transport.h"
#include "registers/config.h"
#include "registers/op_mux.h"
#include "registers/protocol_ops.h"
#include "registers/results.h"

namespace bftreg::registers {

/// Which register emulation the client speaks (see registers.h for the
/// paper mapping and the guarantee each buys).
enum class ProtocolVariant : uint8_t {
  kBsr = 0,        // replicated, one-shot safe reads (Section III)
  kBsrHistory,     // one-shot regular reads via histories (III-C, option 1)
  kBsrTwoRound,    // two-round regular reads (III-C, option 2)
  kBsrWriteBack,   // two-round atomic reads (ABD write-back extension)
  kBcsr,           // erasure-coded, one-shot safe reads (Section IV)
};

const char* to_string(ProtocolVariant v);

struct ClientOptions {
  ProtocolVariant variant{ProtocolVariant::kBsr};
  /// Deadline/retry policy applied to every operation (0 = no deadlines).
  RetryPolicy retry{};
};

/// Per-operation overrides, so one slow read can get a tight deadline (or a
/// critical write extra retries) without mutating the client-wide policy
/// under every other in-flight operation.
struct OpOptions {
  /// Per-attempt deadline in transport ns for this operation; 0 keeps the
  /// effective policy's own timeout.
  TimeNs deadline{0};
  /// Replaces the client-wide RetryPolicy for this operation. `deadline`
  /// (when nonzero) still overrides the timeout of whichever policy wins.
  std::optional<RetryPolicy> retry_policy{};
};

class RegisterClient final : public net::IProcess {
 public:
  RegisterClient(ProcessId self, SystemConfig config, net::Transport* transport,
                 ClientOptions options = {});

  /// Begins a read of `object`; completion (or timeout fallback) is
  /// reported through `cb`. Any number of operations may be in flight.
  void read(uint32_t object, ReadCallback cb);
  /// Same, with per-operation deadline/retry overrides.
  void read(uint32_t object, const OpOptions& opts, ReadCallback cb);

  /// Begins write(value) on `object`.
  void write(uint32_t object, Bytes value, WriteCallback cb);
  /// Same, with per-operation deadline/retry overrides.
  void write(uint32_t object, Bytes value, const OpOptions& opts,
             WriteCallback cb);

  /// Begins a one-round multi-get (replicated variants only; BCSR stores
  /// coded elements, which the batch wire format does not carry). The
  /// object ids are copied out of `objects` before the call returns; the
  /// span may reference caller storage of any lifetime.
  void read_batch(std::span<const uint32_t> objects, BatchReadCallback cb);
  /// Braced-list convenience: read_batch({1, 2, 3}, cb).
  void read_batch(std::initializer_list<uint32_t> objects,
                  BatchReadCallback cb) {
    read_batch(std::span<const uint32_t>(objects.begin(), objects.size()),
               std::move(cb));
  }

  void on_message(const net::Envelope& env) override { mux_.on_message(env); }

  size_t in_flight() const { return mux_.in_flight(); }
  bool idle() const { return mux_.idle(); }
  const ProcessId& id() const { return mux_.id(); }
  const SystemConfig& config() const { return mux_.config(); }
  net::Transport* transport() const { return mux_.transport(); }

  /// Operations that exhausted their retry budget / deadline-triggered
  /// retransmissions, across all operations of this client.
  uint64_t timeouts() const { return mux_.timeouts(); }
  uint64_t retransmits() const { return mux_.retransmits(); }
  /// BCSR: reads that fell back because decoding was impossible.
  uint64_t decode_failures() const;

 private:
  LocalState& state_for(uint32_t object);
  RetryPolicy effective_policy(const OpOptions& opts) const;

  OpMux mux_;
  const ClientOptions options_;
  std::optional<codec::MdsCode> code_;  // engaged iff variant == kBcsr
  /// Per-object persistent state, shared by single and batched reads.
  std::map<uint32_t, LocalState> states_;
};

/// Future-style blocking facade over RegisterClient for the real-time
/// transports (ThreadNetwork, TcpNetwork): each call posts the operation
/// into the client's mailbox and blocks the calling thread until it
/// completes. Do NOT use under the deterministic simulator -- there is no
/// independent scheduler thread to make progress, so the wait would
/// deadlock. Any number of application threads may call concurrently; the
/// client's mailbox serializes the protocol work.
class BlockingRegisterClient {
 public:
  explicit BlockingRegisterClient(RegisterClient& client) : client_(client) {}

  ReadResult read(uint32_t object, const OpOptions& opts = {});
  WriteResult write(uint32_t object, Bytes value, const OpOptions& opts = {});
  BatchReadResult read_batch(std::span<const uint32_t> objects);
  BatchReadResult read_batch(std::initializer_list<uint32_t> objects) {
    return read_batch(
        std::span<const uint32_t>(objects.begin(), objects.size()));
  }

 private:
  RegisterClient& client_;
};

}  // namespace bftreg::registers
