#include "tools/lint_rules.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <stdexcept>

namespace bftreg::lint {

namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool thread_allowed(const std::string& path) {
  return starts_with(path, "src/runtime/") || starts_with(path, "src/socknet/") ||
         starts_with(path, "src/harness/");
}

/// Strips // and /* */ comments (tracking block state across lines) so the
/// pattern rules see only code. Waiver detection runs on the raw line.
std::string strip_comments(const std::string& line, bool& in_block) {
  std::string out;
  out.reserve(line.size());
  for (size_t i = 0; i < line.size(); ++i) {
    if (in_block) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block = false;
        ++i;
      }
      continue;
    }
    if (line[i] == '/' && i + 1 < line.size()) {
      if (line[i + 1] == '/') break;  // rest of line is a comment
      if (line[i + 1] == '*') {
        in_block = true;
        ++i;
        continue;
      }
    }
    out.push_back(line[i]);
  }
  return out;
}

bool waived(const std::vector<std::string>& raw_lines, size_t idx,
            const std::string& rule) {
  const std::string needle = "bftreg-lint: allow(" + rule + ")";
  if (raw_lines[idx].find(needle) != std::string::npos) return true;
  return idx > 0 && raw_lines[idx - 1].find(needle) != std::string::npos;
}

const std::regex kRawThread(R"(\bstd\s*::\s*thread\b)");
const std::regex kDetach(R"(\.\s*detach\s*\()");
const std::regex kRandCall(R"((^|[^0-9A-Za-z_])s?rand\s*\()");
const std::regex kRandomDevice(R"(\bstd\s*::\s*random_device\b)");
// `std::mutex name;` / `Mutex name;` / `mutable std::shared_mutex name{};`
const std::regex kMutexMember(
    R"(^\s*(?:mutable\s+)?(?:std\s*::\s*(?:shared_)?mutex|Mutex)\s+([A-Za-z_]\w*)\s*(?:\{\s*\})?\s*;)");
// Resilience arithmetic: `3|4|5 * f` in either operand order. Deliberately
// not `\d+`: schedule constructions legitimately slice index ranges like
// `2 * f`, while 3/4/5 are exactly the protocol bounds (3f+1 RB, 4f+1 BSR,
// 5f+1 BCSR) that must live in config.h.
const std::regex kResilienceLiteral(R"(\b[345]\s*\*\s*f\b|\bf\s*\*\s*[345]\b)");
// `Mutex name ACQUIRED_BEFORE(a, b);` / `std::mutex name ACQUIRED_AFTER(a);`
const std::regex kOrderedMutex(
    R"((?:std\s*::\s*(?:shared_)?mutex|Mutex)\s+([A-Za-z_]\w*)\s+ACQUIRED_(BEFORE|AFTER)\s*\(([^)]*)\))");
// `MutexLock lock(expr);` -- the RAII acquisition the codebase uses.
const std::regex kMutexLock(R"(\bMutexLock\s+\w+\s*\(\s*([^)]+?)\s*\))");
// `x.busy()` / `p->busy()` -- the single-operation guard of the low-level
// protocol clients.
const std::regex kBusyCall(R"((\.|->)\s*busy\s*\(\s*\))");
// Global-namespace blocking syscalls (`::sendmsg(...)`, `::recv(...)`, ...)
// and the project's framed-I/O helpers. The `::` must not follow an
// identifier character, so member definitions/calls like
// `ThreadCluster::write(` or `RegisterClient::read(` do not match.
const std::regex kBlockingCall(
    R"((?:^|[^A-Za-z0-9_])::(sendmsg|sendto|send|recvmsg|recvfrom|recv|readv|read|writev|write|connect|accept4|accept|poll|select|fsync|fdatasync)\s*\(|\b(write_all|read_exact)\s*\()");

/// Reduces a lock expression to the bare member name the order edges use:
/// `box->mu` -> `mu`, `this->sched_mu_` -> `sched_mu_`, `*ep->mu` -> `mu`.
std::string lock_target(std::string expr) {
  while (!expr.empty() && (expr.front() == '*' || expr.front() == '&' ||
                           expr.front() == ' ')) {
    expr.erase(expr.begin());
  }
  size_t cut = std::string::npos;
  for (const char* sep : {"->", ".", "::"}) {
    const size_t at = expr.rfind(sep);
    if (at != std::string::npos) {
      const size_t after = at + std::strlen(sep);
      if (cut == std::string::npos || after > cut) cut = after;
    }
  }
  if (cut != std::string::npos) expr = expr.substr(cut);
  return expr;
}

}  // namespace

LockOrder collect_lock_order(const std::string& content) {
  LockOrder order;
  std::istringstream in(content);
  std::string line, code;
  bool in_block = false;
  while (std::getline(in, line)) {
    code += strip_comments(line, in_block);
    code += '\n';
  }
  for (std::sregex_iterator it(code.begin(), code.end(), kOrderedMutex), end;
       it != end; ++it) {
    const std::string name = (*it)[1].str();
    const bool before = (*it)[2].str() == "BEFORE";
    std::istringstream args((*it)[3].str());
    std::string arg;
    while (std::getline(args, arg, ',')) {
      const std::string other = lock_target(arg);
      if (other.empty()) continue;
      if (before) {
        order[name].insert(other);  // name < other
      } else {
        order[other].insert(name);  // other < name
      }
    }
  }
  return order;
}

std::vector<Violation> lint_content(const std::string& rel_path,
                                    const std::string& content) {
  return lint_content(rel_path, content, collect_lock_order(content));
}

std::vector<Violation> lint_content(const std::string& rel_path,
                                    const std::string& content,
                                    const LockOrder& order) {
  std::vector<Violation> out;

  std::vector<std::string> raw_lines;
  {
    std::istringstream in(content);
    std::string line;
    while (std::getline(in, line)) raw_lines.push_back(line);
  }

  std::vector<std::string> code_lines;
  code_lines.reserve(raw_lines.size());
  bool in_block = false;
  for (const auto& line : raw_lines) {
    code_lines.push_back(strip_comments(line, in_block));
  }

  auto flag = [&](size_t idx, const std::string& rule, const std::string& message) {
    if (waived(raw_lines, idx, rule)) return;
    out.push_back(Violation{rel_path, static_cast<int>(idx) + 1, rule, message});
  };

  for (size_t i = 0; i < code_lines.size(); ++i) {
    const std::string& code = code_lines[i];
    if (code.empty()) continue;

    if (!thread_allowed(rel_path) && std::regex_search(code, kRawThread)) {
      flag(i, "raw-thread",
           "std::thread outside src/runtime, src/socknet, src/harness; "
           "protocol code must stay single-threaded per process");
    }
    if (std::regex_search(code, kDetach)) {
      flag(i, "detach",
           "detached threads outlive their transport; join via stop() instead");
    }
    if (rel_path != "src/common/rng.h" &&
        (std::regex_search(code, kRandCall) ||
         std::regex_search(code, kRandomDevice))) {
      flag(i, "raw-random",
           "unseeded randomness breaks replayability; draw from bftreg::Rng "
           "(src/common/rng.h)");
    }
    std::smatch m;
    if (std::regex_search(code, m, kMutexMember)) {
      const std::string name = m[1].str();
      const std::string companion = "GUARDED_BY(" + name + ")";
      if (content.find(companion) == std::string::npos) {
        flag(i, "unguarded-mutex",
             "mutex member '" + name + "' has no " + companion +
                 " companion field; write down what the lock protects");
      }
    }
    if (!starts_with(rel_path, "src/registers/") &&
        std::regex_search(code, kBusyCall)) {
      flag(i, "legacy-single-op",
           "busy() gates the low-level one-operation-per-client classes; "
           "use RegisterClient (src/registers/client.h), which multiplexes "
           "concurrent operations instead of serializing on busy()");
    }
    if (rel_path != "src/registers/config.h" &&
        std::regex_search(code, kResilienceLiteral)) {
      flag(i, "resilience-literal",
           "resilience bound arithmetic belongs in src/registers/config.h "
           "(use bsr_min_servers/bcsr_min_servers/rb_min_servers/"
           "bcsr_code_dimension)");
    }
  }

  // Scope pass: walk brace scopes and the MutexLock acquisitions made
  // inside them; a held lock is released when its scope's closing brace
  // drops the depth below its acquisition depth. Two rules consume the
  // held-set:
  //
  //   lock-order        acquiring B while A is held is an inversion iff the
  //                     declared order says B < A.
  //   blocking-in-lock  a blocking syscall or framed-I/O helper while ANY
  //                     lock is held turns that mutex into an I/O
  //                     serializer: every other thread touching the guarded
  //                     state stalls for a kernel round trip (or, on a full
  //                     socket buffer, until the peer drains).
  //
  // Brace tracking is textual (string literals containing braces, or an
  // explicit lock.unlock() before the call, could confuse it), which is the
  // same precision bar as the other rules -- and waivable the same way.
  {
    struct Held {
      std::string name;
      int depth;
    };
    struct Event {
      size_t pos;
      bool acquire;      // MutexLock acquisition vs blocking call
      std::string name;  // lock member name / callee
    };
    std::vector<Held> held;
    int depth = 0;
    for (size_t i = 0; i < code_lines.size(); ++i) {
      const std::string& code = code_lines[i];
      std::vector<Event> events;
      for (std::sregex_iterator it(code.begin(), code.end(), kMutexLock), end;
           it != end; ++it) {
        events.push_back(Event{static_cast<size_t>(it->position(0)), true,
                               lock_target((*it)[1].str())});
      }
      for (std::sregex_iterator it(code.begin(), code.end(), kBlockingCall), end;
           it != end; ++it) {
        const std::string callee = (*it)[1].matched
                                       ? "::" + (*it)[1].str()
                                       : (*it)[2].str();
        events.push_back(
            Event{static_cast<size_t>(it->position(0)), false, callee});
      }
      std::sort(events.begin(), events.end(),
                [](const Event& a, const Event& b) { return a.pos < b.pos; });
      size_t next = 0;
      for (size_t p = 0; p <= code.size(); ++p) {
        while (next < events.size() && events[next].pos == p) {
          const Event& ev = events[next];
          if (ev.acquire) {
            const auto must_precede = order.find(ev.name);
            if (must_precede != order.end()) {
              for (const Held& h : held) {
                if (must_precede->second.count(h.name)) {
                  flag(i, "lock-order",
                       "acquiring '" + ev.name + "' while '" + h.name +
                           "' is held inverts the declared order ('" + ev.name +
                           "' ACQUIRED_BEFORE '" + h.name + "')");
                }
              }
            }
            held.push_back(Held{ev.name, depth});
          } else if (!held.empty()) {
            flag(i, "blocking-in-lock",
                 "blocking call '" + ev.name + "' while '" + held.back().name +
                     "' is held; every thread contending on that mutex stalls "
                     "for the I/O -- stage the data under the lock, release, "
                     "then do the syscall");
          }
          ++next;
        }
        if (p == code.size()) break;
        if (code[p] == '{') {
          ++depth;
        } else if (code[p] == '}') {
          --depth;
          while (!held.empty() && held.back().depth > depth) held.pop_back();
        }
      }
    }
  }
  return out;
}

std::vector<Violation> lint_tree(const std::string& repo_root) {
  namespace fs = std::filesystem;
  const fs::path root(repo_root);
  const fs::path src = root / "src";
  if (!fs::is_directory(src)) {
    throw std::runtime_error("no src/ directory under " + repo_root);
  }

  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".cpp") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  // Pass 1: collect ACQUIRED_BEFORE / ACQUIRED_AFTER edges from every file,
  // so a lock declared in a header is checked against acquisitions in the
  // matching .cpp (and anywhere else the member name appears).
  std::vector<std::pair<std::string, std::string>> sources;  // rel, content
  LockOrder order;
  for (const auto& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot read " + path.string());
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string rel =
        fs::relative(path, root).generic_string();  // forward slashes
    sources.emplace_back(rel, buf.str());
    for (auto& [before, afters] : collect_lock_order(sources.back().second)) {
      order[before].insert(afters.begin(), afters.end());
    }
  }

  // Pass 2: lint each file against the merged order.
  std::vector<Violation> out;
  for (const auto& [rel, content] : sources) {
    auto found = lint_content(rel, content, order);
    out.insert(out.end(), found.begin(), found.end());
  }
  return out;
}

std::string format(const Violation& v) {
  return v.file + ":" + std::to_string(v.line) + ": [" + v.rule + "] " + v.message;
}

}  // namespace bftreg::lint
