// Churn schedules: declarative crash/rejoin scripts for the simulator.
//
// A ChurnSchedule is a named, time-ordered list of steps -- crash a server,
// restart it (WAL replay + quorum catch-up), start a write, start a read --
// that the harness interprets against a SimCluster
// (harness::run_churn_schedule). Keeping the schedules declarative has two
// payoffs: the same script runs unchanged under different protocols/seeds,
// and the schedule NAME keys the deterministic RNG reseed
// (harness::schedule_seed), so a failing churn execution reproduces
// bit-identically regardless of ctest shuffle order.
//
// The builders below encode the three adversarial timings the membership
// layer must survive (Kumar-Welch's churn hazards, specialized to a single
// crash/rejoin):
//   - crash DURING a write: the victim may have ACKed the put and then lost
//     the quorum its ACK was counted toward;
//   - crash during a read's write-back: same hazard on the read side
//     (kBsrWb's phase 2 is a put);
//   - rejoin MID-ROUND: the recovered server answers client rounds while
//     its catch-up traffic is still interleaving with them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace bftreg::adversary {

enum class ChurnAction : uint8_t {
  kCrash = 0,       // mark server `index` crashed
  kRestart = 1,     // rejoin server `index`: WAL replay + catch-up
  kStartWrite = 2,  // start an async write on writer `index`
  kStartRead = 3,   // start an async read on reader `index`
};

const char* to_string(ChurnAction a);

struct ChurnStep {
  ChurnAction action{ChurnAction::kCrash};
  /// Server index for kCrash/kRestart; client index for kStartWrite/Read.
  size_t index{0};
  /// Virtual time offset (ns) from the schedule's start.
  TimeNs at{0};
};

struct ChurnSchedule {
  /// Keys the deterministic reseed (harness::schedule_seed) and labels
  /// failures; two schedules with the same name replay identically.
  std::string name;
  std::vector<ChurnStep> steps;  // must be sorted by `at`
};

/// Crash the victim while a write's PUT-DATA round is in flight (it may
/// have ACKed already), then rejoin it and run a fresh write/read round
/// against the recovered cluster.
ChurnSchedule crash_during_write_schedule(size_t victim);

/// Crash the victim between a write-back read's get-data and its put-data
/// phase (run under Protocol::kBsrWb), then rejoin and re-read.
ChurnSchedule crash_during_read_writeback_schedule(size_t victim);

/// Rejoin the victim while a client round is mid-flight, so catch-up
/// traffic interleaves with live QUERY/PUT rounds.
ChurnSchedule rejoin_mid_round_schedule(size_t victim);

}  // namespace bftreg::adversary
