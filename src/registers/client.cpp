#include "registers/client.h"

#include <future>
#include <memory>
#include <utility>

namespace bftreg::registers {

const char* to_string(ProtocolVariant v) {
  switch (v) {
    case ProtocolVariant::kBsr:
      return "bsr";
    case ProtocolVariant::kBsrHistory:
      return "bsr-history";
    case ProtocolVariant::kBsrTwoRound:
      return "bsr-2r";
    case ProtocolVariant::kBsrWriteBack:
      return "bsr-wb";
    case ProtocolVariant::kBcsr:
      return "bcsr";
  }
  return "?";
}

RegisterClient::RegisterClient(ProcessId self, SystemConfig config,
                               net::Transport* transport, ClientOptions options)
    : mux_(self, std::move(config), transport), options_(options) {
  if (options_.variant == ProtocolVariant::kBcsr) {
    assert(mux_.config().valid_for_bcsr());
    code_ = codec::MdsCode::for_bcsr(mux_.config().n, mux_.config().f);
  } else {
    assert(mux_.config().valid_for_bsr());
  }
}

LocalState& RegisterClient::state_for(uint32_t object) {
  auto [it, inserted] =
      states_.try_emplace(object, LocalState::initial(mux_.config()));
  return it->second;
}

uint64_t RegisterClient::decode_failures() const {
  uint64_t total = 0;
  for (const auto& [object, state] : states_) total += state.decode_failures;
  return total;
}

void RegisterClient::read(uint32_t object, ReadCallback cb) {
  const SystemConfig& cfg = mux_.config();
  LocalState* state = &state_for(object);
  std::unique_ptr<PendingOp> op;
  OpKind kind = OpKind::kBsrRead;
  switch (options_.variant) {
    case ProtocolVariant::kBsr:
      op = std::make_unique<BsrReadOp>(cfg, state, std::move(cb));
      kind = OpKind::kBsrRead;
      break;
    case ProtocolVariant::kBsrHistory:
      op = std::make_unique<HistoryReadOp>(cfg, state, std::move(cb));
      kind = OpKind::kHistoryRead;
      break;
    case ProtocolVariant::kBsrTwoRound:
      op = std::make_unique<TwoRoundReadOp>(cfg, state, std::move(cb));
      kind = OpKind::kTwoRoundRead;
      break;
    case ProtocolVariant::kBsrWriteBack:
      op = std::make_unique<WriteBackReadOp>(cfg, state, std::move(cb));
      kind = OpKind::kWriteBackRead;
      break;
    case ProtocolVariant::kBcsr:
      op = std::make_unique<BcsrReadOp>(cfg, &*code_, state, std::move(cb));
      kind = OpKind::kBcsrRead;
      break;
  }
  mux_.start(std::move(op), kind, object, options_.retry);
}

void RegisterClient::write(uint32_t object, Bytes value, WriteCallback cb) {
  mux_.start(std::make_unique<WriteOp>(mux_.config(),
                                       code_ ? &*code_ : nullptr,
                                       &state_for(object), std::move(value),
                                       std::move(cb)),
             OpKind::kWrite, object, options_.retry);
}

void RegisterClient::read_batch(std::vector<uint32_t> objects,
                                BatchReadCallback cb) {
  assert(options_.variant != ProtocolVariant::kBcsr &&
         "batched reads need replicated storage");
  assert(!objects.empty());
  assert(objects.size() <= 4096 && "batch exceeds the server-side cap");
  mux_.start(std::make_unique<BatchReadOp>(mux_.config(), &states_,
                                           std::move(objects), std::move(cb)),
             OpKind::kBatchRead, /*object=*/0, options_.retry);
}

// --- BlockingRegisterClient -------------------------------------------------

ReadResult BlockingRegisterClient::read(uint32_t object) {
  auto promise = std::make_shared<std::promise<ReadResult>>();
  std::future<ReadResult> fut = promise->get_future();
  client_.transport()->post(client_.id(), [this, object, promise] {
    client_.read(object,
                 [promise](const ReadResult& r) { promise->set_value(r); });
  });
  return fut.get();
}

WriteResult BlockingRegisterClient::write(uint32_t object, Bytes value) {
  auto promise = std::make_shared<std::promise<WriteResult>>();
  std::future<WriteResult> fut = promise->get_future();
  client_.transport()->post(
      client_.id(), [this, object, v = std::move(value), promise]() mutable {
        client_.write(object, std::move(v),
                      [promise](const WriteResult& r) { promise->set_value(r); });
      });
  return fut.get();
}

BatchReadResult BlockingRegisterClient::read_batch(
    std::vector<uint32_t> objects) {
  auto promise = std::make_shared<std::promise<BatchReadResult>>();
  std::future<BatchReadResult> fut = promise->get_future();
  client_.transport()->post(
      client_.id(), [this, objs = std::move(objects), promise]() mutable {
        client_.read_batch(std::move(objs), [promise](const BatchReadResult& r) {
          promise->set_value(r);
        });
      });
  return fut.get();
}

}  // namespace bftreg::registers
