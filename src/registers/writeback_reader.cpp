#include "registers/writeback_reader.h"

#include <cassert>
#include <memory>

namespace bftreg::registers {

WriteBackReader::WriteBackReader(ProcessId self, SystemConfig config,
                                 net::Transport* transport, uint32_t object)
    : mux_(self, std::move(config), transport),
      object_(object),
      state_(LocalState::initial(mux_.config())) {}

void WriteBackReader::start_read(Callback callback) {
  assert(!busy() && "at most one operation per client");
  mux_.start(std::make_unique<WriteBackReadOp>(mux_.config(), &state_,
                                               std::move(callback)),
             OpKind::kWriteBackRead, object_);
}

}  // namespace bftreg::registers
