// TCP loopback transport: the protocols over a real network stack.
//
// Third implementation of net::Transport (after the deterministic
// simulator and the in-memory thread runtime): processes exchange
// length-prefixed, MAC-sealed frames through the kernel. Nothing
// protocol-level changes -- the same state machines run unmodified --
// which is the point: the paper's algorithms assume only reliable
// authenticated point-to-point channels, and TCP + the MAC layer provides
// exactly that.
//
// Thread model (rebuilt for client-fleet scale; numbers in docs/PERF.md):
// every socket lives on one of N event-loop shards (socknet/event_loop.h)
// and every handler context on one of M pooled mailbox consumers, so the
// thread count is N + M regardless of how many endpoints are registered --
// the previous design spawned reader + writer threads *per endpoint* and
// topped out around a dozen processes.
//
//   Outbound  send() seals a 22-byte header, appends (header, payload) to a
//             bounded per-destination queue and schedules a flush on the
//             owning shard -- no syscall, no payload concatenation, no
//             blocking I/O under a lock. The shard drains whole queues with
//             sendmsg + iovec coalescing; a short write arms EPOLLOUT and
//             the next readiness wake resumes mid-frame (wr_offset), so no
//             thread ever parks in a socket call. A full queue sheds the
//             frame (metrics().messages_dropped); client deadlines
//             (registers::OpMux) retransmit.
//
//   Inbound   readiness-driven reads into large refcounted chunks, frames
//             parsed in place, payload *views* aliasing the chunk
//             (common/buffer.h) delivered with zero payload copies. Each
//             parsed envelope is published straight into its delivery
//             context's lock-free MPSC ring (runtime/mailbox.h).
//
//   Duplex    connections are full-duplex: the first authenticated frame
//             on an accepted connection names the peer, and the endpoint
//             *adopts* it as the outbound route to that peer. Replies to a
//             dialed-in client flow back over the client's own connection,
//             so a server holding F clients costs F sockets, not 2F, and
//             clients need no listening socket at all (add_process with
//             listen=false).
//
// Scope: single-host loopback (the offline build environment has no
// external network). The wire format is position-independent, so pointing
// the address book at remote hosts is a config change, not a code change.
#pragma once

#include <sys/types.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/sync.h"
#include "common/types.h"
#include "crypto/auth.h"
#include "net/transport.h"
#include "runtime/mailbox.h"
#include "socknet/event_loop.h"

namespace bftreg::socknet {

struct TcpConfig {
  uint64_t master_secret{0x5eC4e7B17e5eCBA5ULL};
  /// Listening address (loopback only in this build).
  const char* host{"127.0.0.1"};
  /// Transport sizing: event-loop shards, mailbox consumers, outbox cap,
  /// receive chunk/pool sizes. Zero fields resolve to hardware defaults
  /// (net::TransportOptions::resolved). SystemConfig::Builder validates
  /// and carries the same struct for deployments built from a config.
  net::TransportOptions options{};
};

class TcpNetwork final : public net::Transport {
 public:
  explicit TcpNetwork(TcpConfig config);
  ~TcpNetwork() override;

  TcpNetwork(const TcpNetwork&) = delete;
  TcpNetwork& operator=(const TcpNetwork&) = delete;

  /// Registers a process and records it in the address book. Call before
  /// start(). With `listen` (the default) the endpoint binds a listening
  /// socket on an ephemeral port; `listen=false` registers a dial-out-only
  /// endpoint (a client): it reaches servers by connecting and receives
  /// replies over its own connections, so a 10k-client fleet does not pay
  /// 10k listening sockets. Sends *to* a listen-less endpoint are shed
  /// (metrics().messages_dropped) unless a connection from it was adopted.
  void add_process(const ProcessId& pid, net::IProcess* process,
                   bool listen = true);

  /// Starts the loop shards + mailbox pool and delivers on_start() to
  /// every process (on its mailbox consumer, like the other runtimes).
  void start();

  /// Closes sockets and joins all threads.
  ///
  /// Contract: idempotent, and a documented no-op before start() -- both
  /// reduce to "only the winner of the `running_` exchange performs the
  /// shutdown"; later, concurrent, or premature calls return immediately.
  /// Must be called from an *external* thread (the owner or any client
  /// thread), never from a loop shard or mailbox consumer: stop() joins
  /// those threads and would self-deadlock. Asserted in debug builds.
  void stop();

  /// The port a process listens on (0 for listen-less endpoints).
  uint16_t port_of(const ProcessId& pid) const;

  // --- net::Transport -----------------------------------------------------
  void send_payload(const ProcessId& from, const ProcessId& to,
                    Payload payload) override;
  TimeNs now() const override;
  void post(const ProcessId& pid, std::function<void()> fn) override;
  void post_after(const ProcessId& pid, TimeNs delta,
                  std::function<void()> fn) override;
  net::NetworkMetrics& metrics() override { return metrics_; }

  // --- TestHooks ------------------------------------------------------------

  /// The one test/diagnostic surface of the transport (replacing the old
  /// debug_* grab-bag). Everything here is observation or fault injection
  /// for tests and the harness; production code must not call it. All
  /// methods are safe from any external thread while the network runs.
  class TestHooks {
   public:
    /// Receive-path accounting for the zero-copy guarantee: the only
    /// payload bytes ever copied on delivery are partial-frame tails
    /// carried across a chunk roll (bounded by one chunk, independent of
    /// payload size).
    struct RecvStats {
      uint64_t chunks_allocated{0};
      uint64_t tail_bytes_copied{0};
      uint64_t payload_bytes_delivered{0};
    };

    /// Write-path accounting for the EPOLLOUT state machine: how often a
    /// short/blocked write armed EPOLLOUT, how many readiness wakes
    /// resumed a flush, and how many sendmsg calls transmitted less than
    /// requested (the partial-write resume path).
    struct SendStats {
      uint64_t epollout_arms{0};
      uint64_t epollout_wakes{0};
      uint64_t partial_writes{0};
    };

    RecvStats recv_stats(const ProcessId& pid) const;
    SendStats send_stats(const ProcessId& pid) const;

    /// Bytes currently queued from `from` toward `to` (headers +
    /// payloads), counting both unflushed frames and frames waiting on
    /// socket writability.
    size_t outbox_bytes(const ProcessId& from, const ProcessId& to) const;

    /// The loop shard that owns `pid`'s listener, dialed connections and
    /// timers. Pure function of (pid, loop_shards): tests assert the
    /// mapping is stable across calls and across instances.
    size_t loop_shard_of(const ProcessId& pid) const;

    /// Fault injection: shuts down every connection accepted by `pid`'s
    /// endpoint (simulates a peer's socket dying mid-stream; senders must
    /// reconnect).
    void shutdown_inbound(const ProcessId& pid);

    /// Pauses/resumes flushing of `pid`'s outbound queues so tests can
    /// fill the bounded outbox deterministically. stop() overrides a
    /// pause.
    void pause_writes(const ProcessId& pid, bool paused);

    /// Pauses/resumes reading on every connection delivering to `pid`
    /// (disarms EPOLLIN). The peer's kernel buffers then fill and its
    /// writes go short -- the deterministic way to exercise the EPOLLOUT
    /// partial-write path.
    void pause_reads(const ProcessId& pid, bool paused);

   private:
    friend class TcpNetwork;
    explicit TestHooks(TcpNetwork& net) : net_(net) {}
    TcpNetwork& net_;
  };

  TestHooks test_hooks() { return TestHooks(*this); }

 private:
  struct Endpoint;
  struct Conn;

  /// Frame header: [u32 length][from pid (5)][to pid (5)][u64 mac]; length
  /// counts everything after itself (addressing + mac + payload).
  static constexpr size_t kHeaderSize = 4 + 5 + 5 + 8;

  /// One sealed outbound frame: fixed header + refcounted payload view.
  /// Flushes scatter-gather both with sendmsg, so the payload is never
  /// concatenated into a contiguous frame -- and a payload fanned out to n
  /// peers is shared by all n frames, not copied.
  struct OutFrame {
    std::array<uint8_t, kHeaderSize> header;
    Payload payload;
  };

  /// Per-destination outbound state (ep->out_mu). `conn` is a routing hint
  /// only: it may be dereferenced solely on `conn_shard`'s loop thread.
  struct OutQueue {
    std::deque<OutFrame> pending;   // sealed, not yet handed to a conn
    size_t queued_bytes{0};  // bytes parked in `pending`; claimed frames
                           // leave the cap at hand-off to the conn
    bool flush_scheduled{false};
    Conn* conn{nullptr};
    size_t conn_shard{0};
    int failures{0};  // consecutive conn failures; 2 drops the backlog
  };

  /// Refcounted receive chunk; delivered payloads alias it via
  /// Payload(shared_ptr, view) and keep it alive past the reader's reuse.
  struct Chunk {
    explicit Chunk(size_t capacity)
        : data(new uint8_t[capacity]), cap(capacity) {}
    std::unique_ptr<uint8_t[]> data;
    size_t cap;
    size_t filled{0};
  };

  /// Bounded free list of receive chunks. Shared-ptr'd independently of the
  /// Endpoint because delivered payloads (which return chunks here from
  /// their deleter) may outlive the network object.
  struct ChunkPool {
    explicit ChunkPool(size_t cap) : max_bytes(cap) {}
    const size_t max_bytes;
    Mutex mu;
    std::vector<std::unique_ptr<Chunk>> free_list GUARDED_BY(mu);
    size_t bytes GUARDED_BY(mu){0};
  };

  /// Per-connection parse state (owning shard thread private).
  struct ConnState {
    std::shared_ptr<Chunk> chunk;
    size_t parse_pos{0};
  };

  // --- cross-thread entry points -------------------------------------------
  void enqueue(Endpoint* ep, std::function<void()> fn);
  void deliver(Endpoint* ep, net::Envelope env);
  Endpoint* find(const ProcessId& pid);
  const Endpoint* find(const ProcessId& pid) const;
  bool on_internal_thread() const;
  /// Schedules a flush of ep->out[to] on its owning shard if none is
  /// pending. Never called with out_mu held (posting is a syscall).
  void schedule_flush(Endpoint* ep, const ProcessId& to);

  // --- loop-shard helpers (each runs on the shard named in its args) -------
  void flush_task(size_t shard, Endpoint* ep, ProcessId to);
  Conn* dial(size_t shard, Endpoint* ep, const ProcessId& to);
  void register_conn(std::unique_ptr<Conn> conn);
  void accept_ready(Endpoint* ep);
  void on_conn_event(Conn* c, uint32_t events);
  bool read_conn(Conn* c);
  bool parse_frames(Conn* c);
  bool ensure_recv_space(Endpoint* ep, ConnState& st);
  static std::shared_ptr<Chunk> acquire_chunk(Endpoint* ep, size_t min_cap);
  bool try_write(Conn* c);
  ssize_t write_once(Conn* c, size_t* sent_frame_bytes);
  void update_conn_events(Conn* c);
  /// Closes `c`, salvages or sheds its backlog, and erases it from the
  /// shard registry. `c` is invalid after the call; callers must return.
  void conn_failed(Conn* c);
  void drain_shard(size_t shard);

  crypto::Authenticator auth_;
  TcpConfig config_;
  net::TransportOptions opts_;  // config_.options.resolved()
  net::NetworkMetrics metrics_;
  std::map<ProcessId, std::unique_ptr<Endpoint>> endpoints_;
  std::atomic<bool> running_{false};
  std::chrono::steady_clock::time_point epoch_;

  EventLoop loop_;
  MailboxPool mail_;
  /// shard index -> conns owned by that shard's thread. The vector itself
  /// is immutable after construction; element s is touched only on shard
  /// s's loop thread (and in stop(), after the join).
  std::vector<std::map<int, std::unique_ptr<Conn>>> shard_conns_;
};

}  // namespace bftreg::socknet
