// Annotated synchronization primitives.
//
// Thin wrappers over std::mutex / std::condition_variable that carry the
// Clang capability attributes from thread_annotations.h. libstdc++'s
// std::mutex is not annotated, so the analysis cannot see through it; the
// wrappers give every lock in the codebase a capability identity that
// GUARDED_BY / REQUIRES annotations can reference. Zero overhead: the
// methods are inline forwarding calls.
//
// Usage discipline (checked by tools/bftreg_lint):
//   * every Mutex member has at least one GUARDED_BY companion field in the
//     same file, so the lock's protectorate is written down;
//   * condition-variable waits are written as explicit `while (...) wait()`
//     loops so the predicate's guarded reads happen in a function that
//     demonstrably holds the capability.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace bftreg {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  // bftreg-lint: allow(unguarded-mutex) -- the wrapper *is* the capability.
  std::mutex mu_;
};

/// RAII lock; supports explicit unlock()/lock() for wait-style hand-off
/// (scheduler_loop releases around route()).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() RELEASE() { lock_.unlock(); }
  void lock() ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to MutexLock. Predicate-less by design: call
/// sites spell the wait loop out so guarded reads stay inside annotated
/// functions (clang cannot propagate capabilities into a lambda).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Rep, typename Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& dur) {
    return cv_.wait_for(lock.lock_, dur);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace bftreg
