#include "harness/sim_cluster.h"

#include <unordered_map>

#include "storage/persistent_server.h"

namespace bftreg::harness {

using registers::ReadResult;
using registers::WriteResult;

const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::kBsr: return "BSR";
    case Protocol::kBsrHistory: return "BSR-history";
    case Protocol::kBsr2R: return "BSR-2R";
    case Protocol::kBcsr: return "BCSR";
    case Protocol::kRb: return "RB-baseline";
    case Protocol::kBsrWb: return "BSR-WB";
  }
  return "?";
}

size_t min_servers(Protocol p, size_t f) {
  switch (p) {
    case Protocol::kBcsr:
      return registers::bcsr_min_servers(f);
    case Protocol::kRb:
      return registers::rb_min_servers(f);
    default:
      return registers::bsr_min_servers(f);
  }
}

struct SimCluster::WriterSlot {
  std::unique_ptr<net::IProcess> proc;
  std::function<void(Bytes, registers::BsrWriter::Callback)> start;
};

struct SimCluster::ReaderSlot {
  std::unique_ptr<net::IProcess> proc;
  std::function<void(registers::BsrReader::Callback)> start;
};

SimCluster::SimCluster(ClusterOptions options) : options_(std::move(options)) {
  assert(options_.config.n >= 1 && options_.config.n >= options_.config.f);
  sim_ = std::make_unique<sim::Simulator>(sim::SimConfig::with_uniform_delay(
      options_.seed, options_.delay_lo, options_.delay_hi));
  if (options_.protocol == Protocol::kBcsr) {
    initial_elements_ = registers::bcsr_initial_elements(options_.config);
  }
  build();
}

SimCluster::~SimCluster() = default;

Bytes SimCluster::initial_for_server(size_t index) const {
  if (options_.protocol == Protocol::kBcsr) return initial_elements_[index];
  return options_.config.initial_value;
}

std::string SimCluster::wal_path(size_t index) const {
  return options_.wal_dir + "/server-" + std::to_string(index) + ".wal";
}

void SimCluster::build() {
  const auto& cfg = options_.config;

  servers_.resize(cfg.n);
  honest_servers_.assign(cfg.n, nullptr);
  persistent_servers_.assign(cfg.n, nullptr);
  for (size_t i = 0; i < cfg.n; ++i) {
    const ProcessId pid = ProcessId::server(static_cast<uint32_t>(i));
    if (options_.protocol == Protocol::kRb) {
      servers_[i] = std::make_unique<registers::RbServer>(pid, cfg, sim_.get(),
                                                          initial_for_server(i));
    } else if (!options_.wal_dir.empty()) {
      auto srv = std::make_unique<storage::PersistentRegisterServer>(
          pid, cfg, sim_.get(), initial_for_server(i), wal_path(i));
      honest_servers_[i] = srv.get();
      persistent_servers_[i] = srv.get();
      servers_[i] = std::move(srv);
    } else {
      auto srv = std::make_unique<registers::RegisterServer>(pid, cfg, sim_.get(),
                                                             initial_for_server(i));
      honest_servers_[i] = srv.get();
      servers_[i] = std::move(srv);
    }
  }

  for (size_t i = 0; i < options_.num_writers; ++i) {
    const ProcessId pid = writer_id(i);
    auto slot = std::make_unique<WriterSlot>();
    if (options_.protocol == Protocol::kBcsr) {
      auto w = std::make_unique<registers::BcsrWriter>(pid, cfg, sim_.get());
      auto* raw = w.get();
      slot->start = [raw](Bytes v, registers::BsrWriter::Callback cb) {
        raw->start_write(std::move(v), std::move(cb));
      };
      slot->proc = std::move(w);
    } else {
      auto w = std::make_unique<registers::BsrWriter>(pid, cfg, sim_.get());
      auto* raw = w.get();
      slot->start = [raw](Bytes v, registers::BsrWriter::Callback cb) {
        raw->start_write(std::move(v), std::move(cb));
      };
      slot->proc = std::move(w);
    }
    writers_.push_back(std::move(slot));
  }

  for (size_t i = 0; i < options_.num_readers; ++i) {
    const ProcessId pid = reader_id(i);
    auto slot = std::make_unique<ReaderSlot>();
    switch (options_.protocol) {
      case Protocol::kBsr: {
        auto r = std::make_unique<registers::BsrReader>(pid, cfg, sim_.get());
        auto* raw = r.get();
        slot->start = [raw](registers::BsrReader::Callback cb) {
          raw->start_read(std::move(cb));
        };
        slot->proc = std::move(r);
        break;
      }
      case Protocol::kBsrHistory: {
        auto r = std::make_unique<registers::HistoryReader>(pid, cfg, sim_.get());
        auto* raw = r.get();
        slot->start = [raw](registers::BsrReader::Callback cb) {
          raw->start_read(std::move(cb));
        };
        slot->proc = std::move(r);
        break;
      }
      case Protocol::kBsr2R: {
        auto r = std::make_unique<registers::TwoRoundReader>(pid, cfg, sim_.get());
        auto* raw = r.get();
        slot->start = [raw](registers::BsrReader::Callback cb) {
          raw->start_read(std::move(cb));
        };
        slot->proc = std::move(r);
        break;
      }
      case Protocol::kBcsr: {
        auto r = std::make_unique<registers::BcsrReader>(pid, cfg, sim_.get());
        auto* raw = r.get();
        slot->start = [raw](registers::BsrReader::Callback cb) {
          raw->start_read(std::move(cb));
        };
        slot->proc = std::move(r);
        break;
      }
      case Protocol::kRb: {
        auto r = std::make_unique<registers::RbReader>(pid, cfg, sim_.get());
        auto* raw = r.get();
        slot->start = [raw](registers::BsrReader::Callback cb) {
          raw->start_read(std::move(cb));
        };
        slot->proc = std::move(r);
        break;
      }
      case Protocol::kBsrWb: {
        auto r = std::make_unique<registers::WriteBackReader>(pid, cfg, sim_.get());
        auto* raw = r.get();
        slot->start = [raw](registers::BsrReader::Callback cb) {
          raw->start_read(std::move(cb));
        };
        slot->proc = std::move(r);
        break;
      }
    }
    readers_.push_back(std::move(slot));
  }
}

void SimCluster::set_byzantine(size_t index, adversary::StrategyKind kind) {
  set_byzantine(index, adversary::make_strategy(kind, options_.seed + index));
}

void SimCluster::set_byzantine(size_t index,
                               std::unique_ptr<adversary::Strategy> strategy) {
  assert(!started_ && "set_byzantine must precede start()");
  assert(index < options_.config.n);
  adversary::ServerContext ctx;
  ctx.self = ProcessId::server(static_cast<uint32_t>(index));
  ctx.config = options_.config;
  ctx.transport = sim_.get();
  ctx.initial = initial_for_server(index);
  ctx.rng = Rng(options_.seed * 7919 + index);
  servers_[index] =
      std::make_unique<adversary::ByzantineServer>(std::move(ctx), std::move(strategy));
  honest_servers_[index] = nullptr;
  persistent_servers_[index] = nullptr;
}

void SimCluster::start() {
  if (started_) return;
  started_ = true;
  for (size_t i = 0; i < servers_.size(); ++i) {
    sim_->add_process(ProcessId::server(static_cast<uint32_t>(i)), servers_[i].get());
  }
  for (size_t i = 0; i < writers_.size(); ++i) {
    sim_->add_process(writer_id(i), writers_[i]->proc.get());
  }
  for (size_t i = 0; i < readers_.size(); ++i) {
    sim_->add_process(reader_id(i), readers_[i]->proc.get());
  }
}

uint64_t SimCluster::start_write(size_t writer, Bytes value) {
  start();
  assert(writer < writers_.size());
  const ProcessId pid = writer_id(writer);
  const uint64_t rec = recorder_.begin_write(pid, sim_->now(), value);
  pending_writes_[rec];  // default-construct the pending entry
  WriterSlot* slot = writers_[writer].get();
  sim_->post(pid, [this, slot, rec, v = std::move(value)]() mutable {
    slot->start(std::move(v), [this, rec](const WriteResult& r) {
      recorder_.complete_write(rec, sim_->now(), r.tag);
      auto& p = pending_writes_[rec];
      p.done = true;
      p.result = r;
    });
  });
  return rec;
}

uint64_t SimCluster::start_read(size_t reader) {
  start();
  assert(reader < readers_.size());
  const ProcessId pid = reader_id(reader);
  const uint64_t rec = recorder_.begin_read(pid, sim_->now());
  pending_reads_[rec];
  ReaderSlot* slot = readers_[reader].get();
  sim_->post(pid, [this, slot, rec] {
    slot->start([this, rec](const ReadResult& r) {
      recorder_.complete_read(rec, sim_->now(), r.value, r.tag);
      auto& p = pending_reads_[rec];
      p.done = true;
      p.result = r;
    });
  });
  return rec;
}

bool SimCluster::op_done(uint64_t recorder_id) const {
  if (auto it = pending_writes_.find(recorder_id); it != pending_writes_.end()) {
    return it->second.done;
  }
  if (auto it = pending_reads_.find(recorder_id); it != pending_reads_.end()) {
    return it->second.done;
  }
  return false;
}

void SimCluster::await(uint64_t recorder_id) {
  const bool ok = sim_->run_until([&] { return op_done(recorder_id); });
  assert(ok && "operation did not complete (liveness failure?)");
  (void)ok;
}

const WriteResult& SimCluster::write_result(uint64_t recorder_id) const {
  auto it = pending_writes_.find(recorder_id);
  assert(it != pending_writes_.end() && it->second.done);
  return it->second.result;
}

const ReadResult& SimCluster::read_result(uint64_t recorder_id) const {
  auto it = pending_reads_.find(recorder_id);
  assert(it != pending_reads_.end() && it->second.done);
  return it->second.result;
}

WriteResult SimCluster::write(size_t writer, Bytes value) {
  const uint64_t rec = start_write(writer, std::move(value));
  await(rec);
  return write_result(rec);
}

ReadResult SimCluster::read(size_t reader) {
  const uint64_t rec = start_read(reader);
  await(rec);
  return read_result(rec);
}

void SimCluster::crash_server(size_t index) {
  sim_->mark_crashed(ProcessId::server(static_cast<uint32_t>(index)));
}

void SimCluster::restart_server(size_t index) {
  assert(!options_.wal_dir.empty() && "restart_server requires wal_dir");
  assert(persistent_servers_[index] != nullptr &&
         "restart_server only rejoins WAL-backed honest servers");
  const ProcessId pid = ProcessId::server(static_cast<uint32_t>(index));
  // Ensure the old object places no further messages, then retire it (kept
  // alive until teardown; queued simulator closures may still run).
  sim_->mark_crashed(pid);
  retired_.push_back(std::move(servers_[index]));

  // The replacement replays the surviving WAL in its constructor and comes
  // up refusing register traffic (kCatchUpBeforeServe).
  auto srv = std::make_unique<storage::PersistentRegisterServer>(
      pid, options_.config, sim_.get(), initial_for_server(index),
      wal_path(index), storage::RecoveryPolicy::kCatchUpBeforeServe);
  auto* raw = srv.get();
  honest_servers_[index] = raw;
  persistent_servers_[index] = raw;
  servers_[index] = std::move(srv);
  sim_->add_process(pid, raw);  // overwrites the old registration
  sim_->revive(pid);
  sim_->post(pid, [raw] { raw->begin_catch_up(); });
}

storage::PersistentRegisterServer* SimCluster::persistent_server(size_t index) {
  return persistent_servers_[index];
}

void SimCluster::announce_view(uint64_t epoch,
                               const std::vector<uint32_t>& members) {
  std::vector<ProcessId> recipients = options_.config.servers();
  for (size_t i = 0; i < writers_.size(); ++i) recipients.push_back(writer_id(i));
  for (size_t i = 0; i < readers_.size(); ++i) recipients.push_back(reader_id(i));
  for (size_t i = 0; i < honest_servers_.size(); ++i) {
    if (honest_servers_[i] == nullptr) continue;
    if (sim_->is_crashed(ProcessId::server(static_cast<uint32_t>(i)))) continue;
    honest_servers_[i]->broadcast_view(epoch, members, recipients);
    return;
  }
  assert(false && "announce_view: no live honest server to announce from");
}

void SimCluster::crash_writer(size_t index) {
  sim_->mark_crashed(writer_id(index));
}

registers::RegisterServer* SimCluster::server(size_t index) {
  return honest_servers_[index];
}

size_t SimCluster::total_stored_bytes() const {
  size_t total = 0;
  for (const auto* srv : honest_servers_) {
    if (srv != nullptr) total += srv->stored_bytes();
  }
  return total;
}

}  // namespace bftreg::harness
