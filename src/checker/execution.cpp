#include "checker/execution.h"

#include <cassert>
#include <sstream>

namespace bftreg::checker {

uint64_t ExecutionRecorder::begin_write(const ProcessId& client, TimeNs at,
                                        Bytes value) {
  OpRecord op;
  op.kind = OpRecord::Kind::kWrite;
  op.client = client;
  op.id = ops_.size() + 1;
  op.invoked_at = at;
  op.value = std::move(value);
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

uint64_t ExecutionRecorder::begin_read(const ProcessId& client, TimeNs at) {
  OpRecord op;
  op.kind = OpRecord::Kind::kRead;
  op.client = client;
  op.id = ops_.size() + 1;
  op.invoked_at = at;
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

OpRecord& ExecutionRecorder::find(uint64_t id) {
  assert(id >= 1 && id <= ops_.size());
  return ops_[id - 1];
}

void ExecutionRecorder::complete_write(uint64_t id, TimeNs at, const Tag& tag) {
  OpRecord& op = find(id);
  assert(op.kind == OpRecord::Kind::kWrite && !op.completed);
  op.responded_at = at;
  op.completed = true;
  op.tag = tag;
}

void ExecutionRecorder::complete_read(uint64_t id, TimeNs at, Bytes value,
                                      const Tag& tag) {
  OpRecord& op = find(id);
  assert(op.kind == OpRecord::Kind::kRead && !op.completed);
  op.responded_at = at;
  op.completed = true;
  op.value = std::move(value);
  op.tag = tag;
}

std::string ExecutionRecorder::dump_timeline(size_t width) const {
  if (ops_.empty()) return "(empty execution)\n";

  TimeNs start = ops_.front().invoked_at;
  TimeNs end = 0;
  for (const OpRecord& op : ops_) {
    start = std::min(start, op.invoked_at);
    if (op.completed) end = std::max(end, op.responded_at);
    end = std::max(end, op.invoked_at);
  }
  if (end <= start) end = start + 1;
  const double scale = static_cast<double>(width - 1) / static_cast<double>(end - start);
  auto column = [&](TimeNs t) {
    return static_cast<size_t>(static_cast<double>(t - start) * scale);
  };

  std::ostringstream out;
  out << "time axis: [" << start << ", " << end << "] ns; '#' = in progress,"
      << " '>' = never completed\n";
  for (const OpRecord& op : ops_) {
    std::string bar(width, ' ');
    const size_t from = column(op.invoked_at);
    const size_t to = op.completed ? column(op.responded_at) : width - 1;
    for (size_t i = from; i <= to && i < width; ++i) bar[i] = '#';
    if (!op.completed) bar[width - 1] = '>';

    std::ostringstream label;
    label << (op.kind == OpRecord::Kind::kWrite ? "W" : "R") << op.id << " "
          << to_string(op.client);
    out << label.str();
    for (size_t i = label.str().size(); i < 14; ++i) out << ' ';
    out << '|' << bar << "| tag=" << to_string(op.tag);
    if (op.kind == OpRecord::Kind::kWrite || op.completed) {
      out << " |v|=" << op.value.size();
    }
    out << "\n";
  }
  return out.str();
}

std::string ExecutionRecorder::dump() const {
  std::ostringstream out;
  for (const OpRecord& op : ops_) {
    out << (op.kind == OpRecord::Kind::kWrite ? "W" : "R") << op.id << " "
        << to_string(op.client) << " [" << op.invoked_at << ", ";
    if (op.completed) {
      out << op.responded_at << "]";
    } else {
      out << "inf)";
    }
    out << " tag=" << to_string(op.tag) << " |v|=" << op.value.size() << "\n";
  }
  return out.str();
}

}  // namespace bftreg::checker
