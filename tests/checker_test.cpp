// Unit tests for the safety/regularity checkers over hand-built histories.
#include <gtest/gtest.h>

#include "checker/consistency.h"
#include "checker/execution.h"

namespace bftreg::checker {
namespace {

const Bytes kV0{};  // empty initial value
const Bytes kA{'a'};
const Bytes kB{'b'};
const Bytes kC{'c'};

Tag tag(uint64_t n, uint32_t w = 0) { return Tag{n, ProcessId::writer(w)}; }

struct HistoryBuilder {
  ExecutionRecorder rec;

  /// Complete write over [t1, t2].
  void write(TimeNs t1, TimeNs t2, Bytes v, Tag t, uint32_t client = 0) {
    const uint64_t id = rec.begin_write(ProcessId::writer(client), t1, std::move(v));
    rec.complete_write(id, t2, t);
  }
  /// Crashed (incomplete) write invoked at t1.
  void crashed_write(TimeNs t1, Bytes v, uint32_t client = 0) {
    rec.begin_write(ProcessId::writer(client), t1, std::move(v));
  }
  void read(TimeNs t1, TimeNs t2, Bytes v, Tag t, uint32_t client = 0) {
    const uint64_t id = rec.begin_read(ProcessId::reader(client), t1);
    rec.complete_read(id, t2, std::move(v), t);
  }
};

CheckOptions opts(bool strict = false) {
  CheckOptions o;
  o.initial_value = kV0;
  o.strict_validity = strict;
  return o;
}

TEST(SafetyCheckerTest, EmptyExecutionIsSafe) {
  EXPECT_TRUE(check_safety({}, opts()).ok);
}

TEST(SafetyCheckerTest, ReadAfterWriteReturningThatWriteIsSafe) {
  HistoryBuilder h;
  h.write(0, 10, kA, tag(1));
  h.read(20, 30, kA, tag(1));
  EXPECT_TRUE(check_safety(h.rec.ops(), opts()).ok);
}

TEST(SafetyCheckerTest, ReadReturningStaleValueIsUnsafe) {
  HistoryBuilder h;
  h.write(0, 10, kA, tag(1));
  h.write(20, 30, kB, tag(2));
  h.read(40, 50, kA, tag(1));  // a completed write (B) falls between A and r
  const auto res = check_safety(h.rec.ops(), opts());
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.violation.find("safety"), std::string::npos);
}

TEST(SafetyCheckerTest, InitialValueLegalOnlyBeforeAnyCompleteWrite) {
  HistoryBuilder h1;
  h1.read(0, 5, kV0, Tag::initial());
  EXPECT_TRUE(check_safety(h1.rec.ops(), opts()).ok);

  HistoryBuilder h2;
  h2.write(0, 10, kA, tag(1));
  h2.read(20, 30, kV0, Tag::initial());
  EXPECT_FALSE(check_safety(h2.rec.ops(), opts()).ok);
}

TEST(SafetyCheckerTest, ConcurrentReadMayReturnAnything) {
  HistoryBuilder h;
  h.write(0, 100, kA, tag(1));
  h.read(50, 60, kC, tag(9));  // concurrent with the write; clause (ii)
  EXPECT_TRUE(check_safety(h.rec.ops(), opts()).ok);
}

TEST(SafetyCheckerTest, StrictValidityRejectsFabricatedValues) {
  HistoryBuilder h;
  h.write(0, 100, kA, tag(1));
  h.read(50, 60, kC, tag(9));  // kC was never written
  EXPECT_FALSE(check_safety(h.rec.ops(), opts(true)).ok);
}

TEST(SafetyCheckerTest, StrictValidityAcceptsConcurrentWrittenValue) {
  HistoryBuilder h;
  h.write(0, 100, kA, tag(1));
  h.read(50, 60, kA, tag(1));
  EXPECT_TRUE(check_safety(h.rec.ops(), opts(true)).ok);
}

TEST(SafetyCheckerTest, CrashedWriteValueIsLegalForLaterRead) {
  // w(A) crashes; read may return A (Lemma 3 allows any write that began
  // before the read, and an incomplete write cannot be superseded).
  HistoryBuilder h;
  h.crashed_write(0, kA);
  h.read(100, 110, kA, tag(1));
  EXPECT_TRUE(check_safety(h.rec.ops(), opts()).ok);
}

TEST(SafetyCheckerTest, CrashedWriteDoesNotMakeV0Illegal) {
  HistoryBuilder h;
  h.crashed_write(0, kA);
  h.read(100, 110, kV0, Tag::initial());
  EXPECT_TRUE(check_safety(h.rec.ops(), opts()).ok);
}

TEST(SafetyCheckerTest, ValueFromFutureWriteIsUnsafe) {
  HistoryBuilder h;
  h.read(0, 10, kA, tag(1));       // returns A before A was ever written
  h.write(20, 30, kA, tag(1));
  EXPECT_FALSE(check_safety(h.rec.ops(), opts()).ok);
}

TEST(SafetyCheckerTest, TwoSequentialWritesReadNewestIsSafe) {
  HistoryBuilder h;
  h.write(0, 10, kA, tag(1));
  h.write(20, 30, kB, tag(2));
  h.read(40, 50, kB, tag(2));
  EXPECT_TRUE(check_safety(h.rec.ops(), opts()).ok);
}

TEST(SafetyCheckerTest, OverlappingWritesEitherValueLegalAfterBothComplete) {
  // Two concurrent writes; a later read may return either (neither falls
  // completely between the other and the read).
  HistoryBuilder h;
  h.write(0, 100, kA, tag(1, 0));
  h.write(50, 150, kB, tag(1, 1));
  h.read(200, 210, kA, tag(1, 0));
  EXPECT_TRUE(check_safety(h.rec.ops(), opts()).ok);
  HistoryBuilder h2;
  h2.write(0, 100, kA, tag(1, 0));
  h2.write(50, 150, kB, tag(1, 1));
  h2.read(200, 210, kB, tag(1, 1));
  EXPECT_TRUE(check_safety(h2.rec.ops(), opts()).ok);
}

// ------------------------------------------------------------- regularity

TEST(RegularityCheckerTest, Theorem3ScenarioIsUnsafeForRegularity) {
  // The paper's counterexample: w1(v1) completes; w2..w5 start but do not
  // complete; the read (concurrent with w2..w5) returns v0. Safe by clause
  // (ii), but NOT regular.
  HistoryBuilder h;
  h.write(0, 10, kA, tag(1, 0));          // w1 completes
  h.crashed_write(20, kB, 1);             // in-progress writes
  h.crashed_write(20, kC, 2);
  h.read(30, 40, kV0, Tag::initial());    // returns v0

  EXPECT_TRUE(check_safety(h.rec.ops(), opts()).ok);
  const auto res = check_regularity(h.rec.ops(), opts());
  EXPECT_FALSE(res.ok);
}

TEST(RegularityCheckerTest, ConcurrentWriteValueIsRegular) {
  HistoryBuilder h;
  h.write(0, 10, kA, tag(1));
  h.write(20, 100, kB, tag(2));
  h.read(50, 60, kB, tag(2));  // concurrent write's value: fine
  EXPECT_TRUE(check_regularity(h.rec.ops(), opts()).ok);
}

TEST(RegularityCheckerTest, LastCompleteWriteIsRegular) {
  HistoryBuilder h;
  h.write(0, 10, kA, tag(1));
  h.write(20, 100, kB, tag(2));
  h.read(50, 60, kA, tag(1));  // last complete preceding write: fine
  EXPECT_TRUE(check_regularity(h.rec.ops(), opts()).ok);
}

TEST(RegularityCheckerTest, SkippingACompletedWriteIsIrregular) {
  HistoryBuilder h;
  h.write(0, 10, kA, tag(1));
  h.write(20, 30, kB, tag(2));   // complete before the read
  h.write(40, 200, kC, tag(3));  // concurrent with the read
  h.read(100, 110, kA, tag(1));  // skips completed B
  EXPECT_FALSE(check_regularity(h.rec.ops(), opts()).ok);
  EXPECT_TRUE(check_safety(h.rec.ops(), opts()).ok);  // but still safe (ii)
}

TEST(RegularityCheckerTest, NewOldInversionDetected) {
  // Each read is individually legal (B is concurrent with both reads; A is
  // the last complete write), but together they order B before A -- the
  // new/old inversion Definition 2 forbids.
  HistoryBuilder h;
  h.write(0, 10, kA, tag(1));
  h.write(20, 200, kB, tag(2));   // concurrent with both reads
  h.read(50, 60, kB, tag(2), 0);
  h.read(70, 80, kA, tag(1), 0);  // same reader goes backward
  const auto res = check_regularity(h.rec.ops(), opts());
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.violation.find("inversion"), std::string::npos);
}

TEST(RegularityCheckerTest, CrossReaderInversionIsAllowed) {
  // Different readers may disagree on concurrent writes: regular, not
  // atomic, semantics.
  HistoryBuilder h;
  h.write(0, 10, kA, tag(1));
  h.write(20, 200, kB, tag(2));   // concurrent with both reads
  h.read(50, 60, kB, tag(2), 0);  // reader 0 sees the new value
  h.read(70, 80, kA, tag(1), 1);  // reader 1 still sees the old one
  EXPECT_TRUE(check_regularity(h.rec.ops(), opts()).ok);
}

TEST(RegularityCheckerTest, ConcurrentReadsMayDisagree) {
  // Two reads concurrent with each other during a write may see different
  // states; that alone is not an inversion.
  HistoryBuilder h;
  h.write(0, 10, kA, tag(1));
  h.write(20, 200, kB, tag(2));
  h.read(50, 150, kB, tag(2), 0);
  h.read(60, 160, kA, tag(1), 1);
  EXPECT_TRUE(check_regularity(h.rec.ops(), opts()).ok);
}

TEST(RecorderTest, DumpContainsOps) {
  HistoryBuilder h;
  h.write(0, 10, kA, tag(1));
  h.read(20, 30, kA, tag(1));
  const std::string d = h.rec.dump();
  EXPECT_NE(d.find("W1"), std::string::npos);
  EXPECT_NE(d.find("R2"), std::string::npos);
}

TEST(RecorderTest, TimelineShowsBarsAndIncompleteMarkers) {
  HistoryBuilder h;
  h.write(0, 50, kA, tag(1));
  h.crashed_write(60, kB, 1);
  h.read(70, 100, kA, tag(1));
  const std::string t = h.rec.dump_timeline(32);
  EXPECT_NE(t.find("time axis: [0, 100]"), std::string::npos);
  EXPECT_NE(t.find("W1 writer:0"), std::string::npos);
  EXPECT_NE(t.find('#'), std::string::npos);
  EXPECT_NE(t.find('>'), std::string::npos);  // the crashed write
  EXPECT_NE(t.find("R3 reader:0"), std::string::npos);
}

TEST(RecorderTest, TimelineOfEmptyExecution) {
  ExecutionRecorder rec;
  EXPECT_EQ(rec.dump_timeline(), "(empty execution)\n");
}

TEST(RecorderTest, IncompleteOpsHaveOpenInterval) {
  ExecutionRecorder rec;
  rec.begin_write(ProcessId::writer(0), 5, kA);
  ASSERT_EQ(rec.ops().size(), 1u);
  EXPECT_FALSE(rec.ops()[0].completed);
  EXPECT_NE(rec.dump().find("inf"), std::string::npos);
}

}  // namespace
}  // namespace bftreg::checker
