// [n, k] Reed-Solomon code with Berlekamp-Welch error-and-erasure decoding.
//
// Reed-Solomon codes are MDS, so any k of the n coded symbols determine the
// data -- the defining property Section IV-A relies on. The decoder is the
// paper's Phi^{-1}: given m >= k + 2e received symbols of which at most e are
// *erroneous* (Byzantine-corrupted or stale, Section IV-A's terminology) and
// the rest missing (erasures), it recovers the unique original word.
//
// Encoding is polynomial evaluation: the k data symbols are the coefficients
// of P (deg < k) and symbol i is P(alpha_i) with alpha_i = g^i distinct and
// nonzero (nonzero matters: Berlekamp-Welch multiplies the error locator by
// powers of x to pad its degree, so x = 0 must not be an evaluation point).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "codec/gf_linalg.h"

namespace bftreg::codec {

/// A received symbol at a known server position; absent == erasure.
struct ReceivedSymbol {
  size_t position{0};  // server index in [0, n)
  uint8_t value{0};
};

/// How data symbols map to the codeword polynomial.
enum class RsLayout : uint8_t {
  /// Data symbols are P's coefficients (simplest encode: n Horner
  /// evaluations per stripe).
  kCoefficients = 0,
  /// Systematic: data symbols are P's *values* at the first k evaluation
  /// points, so coded symbols 0..k-1 equal the raw data and only the n-k
  /// parity symbols cost arithmetic. This is what production coded
  /// storage uses -- an un-degraded read needs no decoding at all.
  kSystematic = 1,
};

class RsCode {
 public:
  /// Requires 1 <= k <= n <= 255.
  explicit RsCode(size_t n, size_t k, RsLayout layout = RsLayout::kCoefficients);

  size_t n() const { return n_; }
  size_t k() const { return k_; }
  RsLayout layout() const { return layout_; }

  /// Evaluation point of server i.
  uint8_t alpha(size_t i) const { return alphas_[i]; }

  /// n x k generator matrix: row i holds the coefficients mapping the k
  /// data symbols to coded symbol i (Vandermonde powers for kCoefficients;
  /// identity-over-parity for kSystematic). Encoding a whole element is then
  /// n accumulations of coeff x data-shard region products -- the bulk path
  /// MdsCode::encode drives through gf_region.h.
  const GfMatrix& generator() const { return gen_; }

  /// Encodes k data symbols into n coded symbols.
  std::vector<uint8_t> encode_stripe(const uint8_t* data) const;

  /// Maps decoded polynomial coefficients back to the k data symbols
  /// (identity for kCoefficients; evaluation at alpha_0..alpha_{k-1} for
  /// kSystematic).
  std::vector<uint8_t> coeffs_to_data(const std::vector<uint8_t>& coeffs) const;

  /// Interpolation-only decode (assumes all inputs error-free): recovers the
  /// k data symbols from exactly k received symbols. Returns nullopt if the
  /// positions are not distinct / out of range.
  std::optional<std::vector<uint8_t>> interpolate(
      const std::vector<ReceivedSymbol>& symbols) const;

  /// Berlekamp-Welch decode from `symbols` (distinct positions), tolerating
  /// up to e_max errors, where e_max <= (symbols.size() - k) / 2. Returns
  /// the k data symbols, or nullopt if no codeword lies within distance
  /// e_max of the received word.
  std::optional<std::vector<uint8_t>> bw_decode(
      const std::vector<ReceivedSymbol>& symbols, size_t e_max) const;

  /// Largest tolerable error count for m received symbols: (m - k) / 2.
  size_t max_errors(size_t m) const { return m < k_ ? 0 : (m - k_) / 2; }

 private:
  size_t n_;
  size_t k_;
  RsLayout layout_;
  std::vector<uint8_t> alphas_;
  /// kSystematic only: (n-k) x k matrix mapping data to parity symbols,
  /// precomputed as V_parity * V_data^{-1}.
  GfMatrix parity_;
  /// n x k generator matrix (see generator()).
  GfMatrix gen_;
};

/// Evaluates polynomial `coeffs` (coeffs[i] is the x^i coefficient) at x.
uint8_t poly_eval(const std::vector<uint8_t>& coeffs, uint8_t x);

/// Exact polynomial division num / den; nullopt if the remainder is nonzero
/// or den is zero. Leading zero coefficients in the result are trimmed.
std::optional<std::vector<uint8_t>> poly_divide_exact(
    std::vector<uint8_t> num, std::vector<uint8_t> den);

}  // namespace bftreg::codec
