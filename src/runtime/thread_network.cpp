#include "runtime/thread_network.h"

#include <algorithm>
#include <cassert>
#include <future>

#include "common/log.h"

namespace bftreg::runtime {

ThreadNetwork::ThreadNetwork(RuntimeConfig config)
    : auth_(crypto::KeyRegistry(config.master_secret)),
      delay_(std::move(config.delay)),
      rng_(config.seed),
      epoch_(std::chrono::steady_clock::now()) {}

ThreadNetwork::~ThreadNetwork() { stop(); }

void ThreadNetwork::add_process(const ProcessId& pid, net::IProcess* process) {
  assert(!running_.load(std::memory_order_acquire));
  auto box = std::make_unique<Mailbox>();
  box->process.store(process, std::memory_order_relaxed);
  const uint32_t nshards = std::max<uint32_t>(1, process->delivery_shards());
  box->shards.reserve(nshards);
  box->active.reserve(nshards);
  for (uint32_t s = 0; s < nshards; ++s) {
    box->shards.push_back(std::make_unique<MailboxShard>());
    box->active.push_back(std::make_unique<std::atomic<int>>(0));
  }
  auto& slots = by_role_[static_cast<uint8_t>(pid.role)];
  if (slots.size() <= pid.index) slots.resize(pid.index + 1, nullptr);
  slots[pid.index] = box.get();
  boxes_[pid] = std::move(box);
}

void ThreadNetwork::start() {
  assert(!running_.load(std::memory_order_acquire));
  running_.store(true, std::memory_order_release);
  {
    std::vector<ProcessId> pids;
    pids.reserve(boxes_.size());
    for (const auto& [pid, box] : boxes_) pids.push_back(pid);
    auth_.precompute(pids);
  }
  sched_thread_ = std::thread([this] { scheduler_loop(); });
  for (auto& [pid, box] : boxes_) {
    Mailbox* b = box.get();
    b->threads.reserve(b->shards.size());
    for (size_t s = 0; s < b->shards.size(); ++s) {
      MailboxShard* shard = b->shards[s].get();
      std::atomic<int>* active = b->active[s].get();
      b->threads.emplace_back(
          [this, b, shard, active] { mailbox_loop(b, shard, active); });
    }
    enqueue(b, 0, MailItem{nullptr, {}, [b] {
                    b->process.load(std::memory_order_acquire)->on_start();
                  }});
  }
}

bool ThreadNetwork::on_internal_thread() const {
  const auto self = std::this_thread::get_id();
  if (sched_thread_.joinable() && self == sched_thread_.get_id()) return true;
  for (const auto& [pid, box] : boxes_) {
    for (const auto& t : box->threads) {
      if (t.joinable() && self == t.get_id()) return true;
    }
  }
  return false;
}

void ThreadNetwork::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Joining our own mailbox/scheduler thread would deadlock; stop() is an
  // external-thread API (see header contract).
  assert(!on_internal_thread() && "stop() called from a network-owned thread");
  {
    MutexLock lock(sched_mu_);
    sched_cv_.notify_all();
  }
  if (sched_thread_.joinable()) sched_thread_.join();
  for (auto& [pid, box] : boxes_) {
    for (auto& shard : box->shards) shard->stop();
    for (auto& t : box->threads) {
      if (t.joinable()) t.join();
    }
  }
}

void ThreadNetwork::mark_crashed(const ProcessId& pid) {
  if (Mailbox* box = find(pid)) {
    // seq_cst pairs with the handler's seq_cst entry token: see quiesce().
    box->crashed.store(true, std::memory_order_seq_cst);
  }
}

void ThreadNetwork::quiesce(const ProcessId& pid) {
  Mailbox* box = find(pid);
  if (box == nullptr) return;
  assert(box->crashed.load(std::memory_order_seq_cst) &&
         "quiesce() requires mark_crashed() first");
  // Dekker handshake with the handler: it increments its token seq_cst and
  // THEN checks crashed. In the single total order, either the handler saw
  // crashed == true (and skips the process), or its increment precedes our
  // crashed store -- in which case the load below observes the token held
  // until that handler exits. Once all counters read 0, no old-process
  // handler runs or can start.
  for (const auto& active : box->active) {
    while (active->load(std::memory_order_seq_cst) != 0) {
      std::this_thread::yield();
    }
  }
}

void ThreadNetwork::replace_process(const ProcessId& pid,
                                    net::IProcess* process) {
  Mailbox* box = find(pid);
  if (box == nullptr) return;
  assert(std::max<uint32_t>(1, process->delivery_shards()) ==
             box->shards.size() &&
         "replacement process must use the same shard count");
  // Release pairs with the handler's per-item acquire load: everything the
  // replacement's constructor did (WAL replay included) is visible before
  // any handler runs it.
  box->process.store(process, std::memory_order_release);
}

void ThreadNetwork::revive(const ProcessId& pid) {
  if (Mailbox* box = find(pid)) {
    box->crashed.store(false, std::memory_order_seq_cst);
  }
}

TimeNs ThreadNetwork::now() const {
  return static_cast<TimeNs>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now() - epoch_)
                                 .count());
}

ThreadNetwork::Mailbox* ThreadNetwork::find(const ProcessId& pid) const {
  const auto role = static_cast<uint8_t>(pid.role);
  if (role >= 3) return nullptr;
  const auto& slots = by_role_[role];
  return pid.index < slots.size() ? slots[pid.index] : nullptr;
}

void ThreadNetwork::enqueue(Mailbox* box, uint32_t shard, MailItem item) {
  item.shard = shard;
  if (box->shards[shard]->push_item(std::move(item))) {
    metrics_.on_mailbox_overflow();
  }
}

void ThreadNetwork::mailbox_loop(Mailbox* box, MailboxShard* shard,
                                 std::atomic<int>* active) {
  // pop_wait_consume drains whole batches in place: under load the ring
  // hands us bursts without a lock in sight, and the per-item crashed
  // check is preserved -- a crash takes effect mid-batch, exactly as it
  // did item-by-item.
  //
  // The entry token goes up seq_cst BEFORE the crashed check (the other
  // half of quiesce()'s Dekker handshake), and the current process object
  // is loaded per item -- `item.proc` only discriminates envelope vs task,
  // so an item enqueued before a replace_process delivers to the NEW
  // process, which is indistinguishable from the network being slow.
  // Batch brackets (IProcess::on_batch_begin/end): a bracket opens lazily
  // before the first delivery of a ring batch and closes when the batch is
  // drained -- or early, when a task item interleaves or the loaded process
  // object changes (replace_process), so a bracketed process never spans
  // foreign work. A crash observed mid-batch abandons the bracket without
  // calling on_batch_end: the hooks are amortization-only by contract, and
  // a revived/replaced process flushes whatever the abandoned bracket left
  // pending at its next batch (indistinguishable from network delay).
  net::IProcess* open = nullptr;
  uint32_t open_shard = 0;
  auto close_batch = [box, active, &open, &open_shard] {
    if (open == nullptr) return;
    active->fetch_add(1, std::memory_order_seq_cst);
    if (!box->crashed.load(std::memory_order_seq_cst)) {
      open->on_batch_end(open_shard);
    }
    active->fetch_sub(1, std::memory_order_release);
    open = nullptr;
  };
  auto handle = [box, active, &open, &open_shard](MailItem& item) {
    active->fetch_add(1, std::memory_order_seq_cst);
    if (!box->crashed.load(std::memory_order_seq_cst)) {
      if (item.proc != nullptr) {
        net::IProcess* proc = box->process.load(std::memory_order_acquire);
        if (open != nullptr && (open != proc || open_shard != item.shard)) {
          open->on_batch_end(open_shard);
          open = nullptr;
        }
        if (open == nullptr) {
          proc->on_batch_begin(item.shard);
          open = proc;
          open_shard = item.shard;
        }
        proc->on_message(item.env);
      } else if (item.fn) {
        if (open != nullptr) {
          open->on_batch_end(open_shard);
          open = nullptr;
        }
        item.fn();
      }
    } else {
      open = nullptr;  // crashed: abandon any bracket, never re-enter
    }
    active->fetch_sub(1, std::memory_order_release);
  };
  while (shard->pop_wait_consume(handle)) {
    close_batch();
  }
}

void ThreadNetwork::send_payload(const ProcessId& from, const ProcessId& to,
                                 Payload payload) {
  if (Mailbox* src = find(from);
      src != nullptr && src->crashed.load(std::memory_order_acquire)) {
    return;
  }
  net::Envelope env;
  env.from = from;
  env.to = to;
  env.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  env.sent_at = now();
  env.mac = auth_.seal(from, to, payload);
  env.payload = std::move(payload);
  metrics_.on_send(env.payload.size());

  TimeNs d = 0;
  if (delay_) {
    MutexLock lock(rng_mu_);
    d = delay_->delay(env, rng_);
  }
  if (d == 0) {
    route(std::move(env));
    return;
  }
  MutexLock lock(sched_mu_);
  sched_queue_.push(Timed{now() + d, env.seq, std::move(env), ProcessId{}, nullptr});
  sched_cv_.notify_one();
}

void ThreadNetwork::route(net::Envelope env) {
  Mailbox* box = find(env.to);
  if (box == nullptr || box->crashed.load(std::memory_order_acquire)) return;
  // Unlike the socket transport, no byte ever left this address space:
  // every envelope was sealed by send_payload above over an immutable
  // refcounted payload, so re-verifying here is the identity check by
  // construction. Model the receiver-side verification as a debug
  // assertion instead of burning a SipHash pass per delivery.
  assert(auth_.verify(env.from, env.to, env.payload, env.mac));
  metrics_.on_deliver();
  net::IProcess* proc = box->process.load(std::memory_order_acquire);
  // shard_of runs on the sender's thread by contract (pure function of the
  // envelope); the modulo keeps a buggy override in range.
  uint32_t shard = 0;
  if (box->shards.size() > 1) {
    shard = proc->shard_of(env) % static_cast<uint32_t>(box->shards.size());
  }
  enqueue(box, shard, MailItem{proc, std::move(env), nullptr});
}

void ThreadNetwork::scheduler_loop() {
  MutexLock lock(sched_mu_);
  for (;;) {
    if (!running_.load(std::memory_order_acquire)) {
      // Shutting down: anything not yet due is dropped -- pending
      // post_after timers may be arbitrarily far in the future and must
      // not stall stop(), which joins this thread.
      while (!sched_queue_.empty() && sched_queue_.top().due <= now()) {
        Timed item = std::move(const_cast<Timed&>(sched_queue_.top()));
        sched_queue_.pop();
        lock.unlock();
        if (item.fn) {
          post(item.pid, std::move(item.fn));
        } else {
          route(std::move(item.env));
        }
        lock.lock();
      }
      return;
    }
    if (sched_queue_.empty()) {
      sched_cv_.wait(lock);
      continue;
    }
    const TimeNs due = sched_queue_.top().due;
    const TimeNs t = now();
    if (t < due) {
      sched_cv_.wait_for(lock, std::chrono::nanoseconds(due - t));
      continue;
    }
    Timed item = std::move(const_cast<Timed&>(sched_queue_.top()));
    sched_queue_.pop();
    lock.unlock();
    if (item.fn) {
      post(item.pid, std::move(item.fn));
    } else {
      route(std::move(item.env));
    }
    lock.lock();
  }
}

void ThreadNetwork::post(const ProcessId& pid, std::function<void()> fn) {
  // Tasks (client op starts, timer fires) always run on shard 0 so they
  // keep the single-context guarantee protocol clients rely on.
  if (Mailbox* box = find(pid)) {
    enqueue(box, 0, MailItem{nullptr, {}, std::move(fn)});
  }
}

void ThreadNetwork::post_after(const ProcessId& pid, TimeNs delta,
                               std::function<void()> fn) {
  if (delta == 0) {
    post(pid, std::move(fn));
    return;
  }
  MutexLock lock(sched_mu_);
  sched_queue_.push(Timed{now() + delta, next_seq_.fetch_add(1, std::memory_order_relaxed),
                          net::Envelope{}, pid, std::move(fn)});
  sched_cv_.notify_one();
}

void BlockingInvoker::run(
    const ProcessId& pid,
    const std::function<void(std::function<void()> done)>& start_fn) {
  auto promise = std::make_shared<std::promise<void>>();
  std::future<void> fut = promise->get_future();
  net_.post(pid, [start_fn, promise] {
    start_fn([promise] { promise->set_value(); });
  });
  fut.wait();
}

}  // namespace bftreg::runtime
