// Lightweight expected-like result type.
//
// Protocol and codec code never throws across module boundaries (failures
// such as "undecodable word" or "malformed message" are normal events under
// Byzantine faults, not programmer errors); they return `Result<T>` or
// `std::optional` instead.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace bftreg {

enum class Errc {
  kOk = 0,
  kMalformedMessage,
  kDecodeFailed,
  kTimeout,
  kInvalidArgument,
  kNotFound,
  kAuthFailed,
  kUnavailable,
};

const char* to_string(Errc e);

struct Error {
  Errc code{Errc::kOk};
  std::string detail;
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error err) : v_(std::move(err)) {}  // NOLINT: implicit by design
  Result(Errc code, std::string detail = {}) : v_(Error{code, std::move(detail)}) {}

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<Error>(v_);
  }

 private:
  std::variant<T, Error> v_;
};

}  // namespace bftreg
