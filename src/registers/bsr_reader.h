// BSR one-shot read protocol: Fig. 2.
//
// A single get-data phase: QUERY-DATA to all servers, wait for n-f
// DATA-RESPs, build P = the set of (tag, value) pairs reported identically
// by at least f+1 servers (the "witness" rule of Section III: f+1 matching
// reports pin at least one honest server behind the pair). Return the
// highest pair of P if it beats the reader's local pair, else the local
// pair (initially (t0, v0)).
//
// One round of client-to-server communication -- Definition 3's one-shot
// read -- which is the paper's headline property.
#pragma once

#include <functional>
#include <map>
#include <unordered_map>
#include <utility>

#include "net/transport.h"
#include "registers/config.h"
#include "registers/messages.h"
#include "registers/quorum.h"

namespace bftreg::registers {

struct ReadResult {
  Bytes value;
  Tag tag;               // tag associated with the returned value
  bool fresh{false};     // true iff P was non-empty and beat the local pair
  TimeNs invoked_at{0};
  TimeNs completed_at{0};
  int rounds{1};
};

class BsrReader : public net::IProcess {
 public:
  using Callback = std::function<void(const ReadResult&)>;

  BsrReader(ProcessId self, SystemConfig config, net::Transport* transport,
            uint32_t object = 0);

  /// Begins a read. Must run in this process's execution context.
  void start_read(Callback callback);

  void on_message(const net::Envelope& env) override;

  bool busy() const { return reading_; }
  const ProcessId& id() const { return self_; }

  /// The reader's persistent local pair (t_local, v_local) of Fig. 2.
  const Tag& local_tag() const { return local_.tag; }
  const Bytes& local_value() const { return local_.value; }

 private:
  void finish();

  const ProcessId self_;
  const SystemConfig config_;
  net::Transport* const transport_;
  const uint32_t object_;

  TaggedValue local_;  // persists across reads (Fig. 2 line 1)

  bool reading_{false};
  uint64_t op_id_{0};
  QuorumTracker responded_;
  /// First response per server this operation.
  std::map<ProcessId, TaggedValue> responses_;
  Callback callback_;
  TimeNs invoked_at_{0};
};

}  // namespace bftreg::registers
